//! Backward-pass generation: CCS-driven reversal of SDFG elements.
//!
//! The entry point is [`generate_backward`], which produces a single
//! *gradient SDFG*: the (augmented) forward program followed by the backward
//! program, plus the bookkeeping the checkpointing pass and the gradient
//! engine need (gradient container names, tape containers, free hints and
//! store/recompute candidates).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use dace_sdfg::{
    compute_ccs, ArrayDesc, BranchRegion, CcsInfo, CondExpr, ControlFlow, DataflowGraph, DfNode,
    LibraryOp, LoopRegion, MapScope, Memlet, NodeId, ScalarExpr, Sdfg, State, SymExpr, Tasklet,
};

use crate::checkpoint::{CheckpointReport, RecomputeCandidate};

/// Errors raised during backward-pass generation.
#[derive(Clone, Debug, PartialEq)]
pub enum AdError {
    /// The dependent output array does not exist.
    UnknownOutput(String),
    /// The dependent output is not a scalar (`[1]`-shaped) container.
    NonScalarOutput(String),
    /// A requested independent variable does not exist.
    UnknownInput(String),
    /// A construct is outside the supported loop/graph taxonomy (Fig. 5).
    Unsupported(String),
    /// The underlying SDFG is malformed.
    Malformed(String),
}

impl fmt::Display for AdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdError::UnknownOutput(s) => write!(f, "unknown output array `{s}`"),
            AdError::NonScalarOutput(s) => write!(
                f,
                "output `{s}` must be a [1]-shaped container (add a sum reduction)"
            ),
            AdError::UnknownInput(s) => write!(f, "unknown input array `{s}`"),
            AdError::Unsupported(s) => write!(f, "unsupported construct for AD: {s}"),
            AdError::Malformed(s) => write!(f, "malformed SDFG: {s}"),
        }
    }
}

impl std::error::Error for AdError {}

/// The generated gradient program and its metadata.
#[derive(Clone, Debug)]
pub struct BackwardPlan {
    /// The combined gradient SDFG: augmented forward followed by backward.
    pub sdfg: Sdfg,
    /// Map from original array name to its gradient container name.
    pub gradients: BTreeMap<String, String>,
    /// The dependent output array.
    pub output: String,
    /// The independent inputs the caller asked gradients for.
    pub inputs: Vec<String>,
    /// Tape / stored-copy containers added to forward values to the backward
    /// pass.
    pub stored: Vec<String>,
    /// Containers chosen for recomputation by the checkpointing pass.
    pub recomputed: Vec<String>,
    /// Per-state free hints (state id in `sdfg` → containers to free after).
    pub free_hints: HashMap<usize, Vec<String>>,
    /// Arrays that contribute to the output (the CCS array set).
    pub ccs_arrays: BTreeSet<String>,
    /// Store/recompute candidates for the checkpointing pass.
    pub candidates: Vec<RecomputeCandidate>,
    /// Index into the top-level sequence of `sdfg.cfg` where the backward
    /// half begins (the gradient-seed state).
    pub backward_start_index: usize,
    /// Report of the ILP checkpointing pass, if it ran.
    pub ilp_report: Option<CheckpointReport>,
}

impl BackwardPlan {
    /// The gradient container of an array, if it exists.
    pub fn gradient_of(&self, array: &str) -> Option<&str> {
        self.gradients.get(array).map(|s| s.as_str())
    }
}

/// Generate the backward pass for `output` with respect to `inputs`.
///
/// The returned plan uses the store-all strategy; apply
/// [`crate::checkpoint::apply_strategy`] (or use [`crate::GradientEngine`])
/// to change the store/recompute configuration.
pub fn generate_backward(
    fwd: &Sdfg,
    output: &str,
    inputs: &[&str],
) -> Result<BackwardPlan, AdError> {
    let out_desc = fwd
        .arrays
        .get(output)
        .ok_or_else(|| AdError::UnknownOutput(output.to_string()))?;
    let is_scalar = out_desc.shape.len() == 1 && out_desc.shape[0].simplified().is_const(1);
    if !is_scalar {
        return Err(AdError::NonScalarOutput(output.to_string()));
    }
    for input in inputs {
        if !fwd.arrays.contains_key(*input) {
            return Err(AdError::UnknownInput((*input).to_string()));
        }
    }

    let ccs = compute_ccs(fwd, output);
    let mut ctx = Ctx::new(fwd, ccs, output, inputs);
    let (fwd_cf, bwd_cf) = ctx.reverse_cf(&fwd.cfg)?;

    // Seed the output gradient with 1.0.
    let grad_out = ctx.grads.get(output).cloned().ok_or_else(|| {
        AdError::Malformed(format!("output `{output}` has no gradient container"))
    })?;
    let mut seed_graph = DataflowGraph::new();
    let t = seed_graph.add_tasklet(Tasklet::new("seed", "out", ScalarExpr::Const(1.0)));
    let acc = seed_graph.add_access(&grad_out);
    seed_graph.add_edge(
        t,
        Some("out"),
        acc,
        None,
        Memlet::element(&grad_out, vec![SymExpr::int(0)]),
    );
    let seed_id = ctx.out.add_state(State {
        name: "grad_seed".to_string(),
        graph: seed_graph,
    });

    let mut top: Vec<ControlFlow> = flatten(fwd_cf);
    let backward_start_index = top.len();
    top.push(ControlFlow::State(seed_id));
    top.extend(flatten(bwd_cf));
    ctx.out.cfg = ControlFlow::Sequence(top);
    ctx.out
        .validate_strict()
        .map_err(|e| AdError::Malformed(e.to_string()))?;

    Ok(BackwardPlan {
        sdfg: ctx.out,
        gradients: ctx.grads,
        output: output.to_string(),
        inputs: inputs.iter().map(|s| s.to_string()).collect(),
        stored: ctx.stored,
        recomputed: Vec::new(),
        free_hints: HashMap::new(),
        ccs_arrays: ctx.ccs.contributing_arrays.clone(),
        candidates: ctx.candidates,
        backward_start_index,
        ilp_report: None,
    })
}

fn flatten(cf: ControlFlow) -> Vec<ControlFlow> {
    match cf {
        ControlFlow::Sequence(v) => v,
        other => vec![other],
    }
}

/// Context of an enclosing sequential loop during reversal (used for tape
/// shapes and indices).
#[derive(Clone, Debug)]
struct LoopCtx {
    var: String,
    start: SymExpr,
    trips: SymExpr,
    step: i64,
}

impl LoopCtx {
    /// The tape index expression for the current iteration.
    fn offset(&self) -> SymExpr {
        if self.step > 0 {
            SymExpr::sym(&self.var).sub(&self.start)
        } else {
            self.start.sub(&SymExpr::sym(&self.var))
        }
    }
}

struct Ctx<'a> {
    fwd: &'a Sdfg,
    ccs: CcsInfo,
    out: Sdfg,
    grads: BTreeMap<String, String>,
    stored: Vec<String>,
    candidates: Vec<RecomputeCandidate>,
    loop_stack: Vec<LoopCtx>,
    counter: usize,
    /// linear position of each state id in forward execution order
    state_pos: HashMap<usize, usize>,
    /// positions of states writing each array
    write_pos: BTreeMap<String, Vec<usize>>,
    /// arrays written inside some loop body
    written_in_loop: BTreeSet<String>,
}

impl<'a> Ctx<'a> {
    fn new(fwd: &'a Sdfg, ccs: CcsInfo, output: &str, inputs: &[&str]) -> Self {
        let mut out = Sdfg::new(format!("{}_grad", fwd.name));
        for s in &fwd.symbols {
            out.add_symbol(s.clone());
        }
        for (name, desc) in &fwd.arrays {
            out.add_array(name.clone(), desc.clone())
                .expect("fresh sdfg");
        }
        // Gradient containers for every contributing array.  Only the
        // gradients the caller asked for (and the seed) are program outputs;
        // the rest are transients whose lifetime ends inside the backward
        // pass, which is what lets the memory tracker observe the effect of
        // store/recompute decisions.
        let mut grads = BTreeMap::new();
        for array in &ccs.contributing_arrays {
            let desc = &fwd.arrays[array];
            let gname = out.fresh_name(&format!("grad_{array}"));
            let keep = array == output || inputs.contains(&array.as_str());
            out.add_array(
                gname.clone(),
                ArrayDesc {
                    shape: desc.shape.clone(),
                    dtype: desc.dtype,
                    transient: !keep,
                },
            )
            .expect("fresh gradient name");
            grads.insert(array.clone(), gname);
        }

        // Write positions / loop-write info.
        let order = fwd.cfg.states_in_order();
        let state_pos: HashMap<usize, usize> =
            order.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let mut write_pos: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut written_in_loop: BTreeSet<String> = BTreeSet::new();
        collect_write_info(
            fwd,
            &fwd.cfg,
            0,
            &state_pos,
            &mut write_pos,
            &mut written_in_loop,
        );

        Ctx {
            fwd,
            ccs,
            out,
            grads,
            stored: Vec::new(),
            candidates: Vec::new(),
            loop_stack: Vec::new(),
            counter: 0,
            state_pos,
            write_pos,
            written_in_loop,
        }
    }

    fn fresh(&mut self, base: &str) -> String {
        let name = self.out.fresh_name(&format!("{base}_{}", self.counter));
        self.counter += 1;
        name
    }

    fn grad(&self, array: &str) -> Option<String> {
        self.grads.get(array).cloned()
    }

    /// A loop-invariant upper bound of `expr`: every enclosing loop iterator
    /// is substituted by both of its range endpoints and the maximum is
    /// taken (affine expressions are monotonic in each iterator).  Used for
    /// tape shapes, which must not reference loop iterators — triangular
    /// loop nests (trmm, symm, ...) get a rectangular over-allocation.
    fn invariant_bound(&self, expr: &SymExpr) -> SymExpr {
        let mut bound = expr.clone();
        for l in &self.loop_stack {
            if !bound.references(&l.var) {
                continue;
            }
            let at_start = bound.substitute(&l.var, &l.start);
            let at_end = bound.substitute(&l.var, &l.start.add(&l.trips));
            bound = SymExpr::Max(Box::new(at_start), Box::new(at_end)).simplified();
        }
        SymExpr::Max(Box::new(bound), Box::new(SymExpr::int(0))).simplified()
    }

    /// Can the backward pass read `array` directly and observe the value the
    /// forward pass read in the state at `reading_pos`?
    fn is_safe_read(&self, array: &str, reading_pos: usize) -> bool {
        let Some(writes) = self.write_pos.get(array) else {
            return true;
        };
        if writes.is_empty() {
            return true;
        }
        if self.written_in_loop.contains(array) {
            return false;
        }
        if writes.len() > 1 {
            return false;
        }
        writes[0] < reading_pos
    }

    // --------------------------------------------------------------------
    // control-flow reversal
    // --------------------------------------------------------------------

    fn reverse_cf(&mut self, cf: &ControlFlow) -> Result<(ControlFlow, ControlFlow), AdError> {
        match cf {
            ControlFlow::State(id) => self.reverse_state(*id),
            ControlFlow::Sequence(children) => {
                let mut fwd_items = Vec::new();
                let mut bwd_items = Vec::new();
                for c in children {
                    let (f, b) = self.reverse_cf(c)?;
                    fwd_items.push(f);
                    bwd_items.push(b);
                }
                bwd_items.reverse();
                Ok((
                    ControlFlow::Sequence(fwd_items),
                    ControlFlow::Sequence(bwd_items),
                ))
            }
            ControlFlow::Loop(l) => {
                let step = l
                    .step
                    .eval_const()
                    .map_err(|_| AdError::Unsupported("loop step must be a constant".into()))?;
                if step != 1 && step != -1 {
                    return Err(AdError::Unsupported(format!(
                        "loop step {step} (only ±1 is supported for AD)"
                    )));
                }
                let trips = if step > 0 {
                    SymExpr::Max(Box::new(l.end.sub(&l.start)), Box::new(SymExpr::int(0)))
                        .simplified()
                } else {
                    SymExpr::Max(Box::new(l.start.sub(&l.end)), Box::new(SymExpr::int(0)))
                        .simplified()
                };
                self.loop_stack.push(LoopCtx {
                    var: l.var.clone(),
                    start: l.start.clone(),
                    trips,
                    step,
                });
                let (fwd_body, bwd_body) = self.reverse_cf(&l.body)?;
                self.loop_stack.pop();

                let fwd_loop = ControlFlow::Loop(LoopRegion {
                    var: l.var.clone(),
                    start: l.start.clone(),
                    end: l.end.clone(),
                    step: l.step.clone(),
                    body: Box::new(fwd_body),
                });
                // Reverse the iteration order: for step +1, iterate from
                // end-1 down to start; for step -1, from end+1 up to start.
                let bwd_loop = if step > 0 {
                    ControlFlow::Loop(LoopRegion {
                        var: l.var.clone(),
                        start: l.end.sub(&SymExpr::int(1)),
                        end: l.start.sub(&SymExpr::int(1)),
                        step: SymExpr::int(-1),
                        body: Box::new(bwd_body),
                    })
                } else {
                    ControlFlow::Loop(LoopRegion {
                        var: l.var.clone(),
                        start: l.end.add_int(1),
                        end: l.start.add_int(1),
                        step: SymExpr::int(1),
                        body: Box::new(bwd_body),
                    })
                };
                Ok((fwd_loop, bwd_loop))
            }
            ControlFlow::Branch(b) => {
                // Store the evaluated condition in a [1]-shaped flag container
                // so the backward pass replays the same decision (Fig. 3).
                let flag = self.fresh("stored_cond");
                self.out
                    .add_array(flag.clone(), ArrayDesc::transient(vec![SymExpr::int(1)]))
                    .map_err(|e| AdError::Malformed(e.to_string()))?;
                self.stored.push(flag.clone());
                let set_flag = |ctx: &mut Ctx, value: f64| -> usize {
                    let mut g = DataflowGraph::new();
                    let t =
                        g.add_tasklet(Tasklet::new("store_cond", "out", ScalarExpr::Const(value)));
                    let a = g.add_access(&flag);
                    g.add_edge(
                        t,
                        Some("out"),
                        a,
                        None,
                        Memlet::element(&flag, vec![SymExpr::int(0)]),
                    );
                    ctx.out.add_state(State {
                        name: format!("{flag}_set"),
                        graph: g,
                    })
                };
                let set_true = set_flag(self, 1.0);
                let set_false = set_flag(self, 0.0);
                let store_branch = ControlFlow::Branch(BranchRegion {
                    cond: b.cond.clone(),
                    then_body: Box::new(ControlFlow::State(set_true)),
                    else_body: Some(Box::new(ControlFlow::State(set_false))),
                });

                let (fwd_then, bwd_then) = self.reverse_cf(&b.then_body)?;
                let (fwd_else, bwd_else) = match &b.else_body {
                    Some(e) => {
                        let (f, bk) = self.reverse_cf(e)?;
                        (Some(f), Some(bk))
                    }
                    None => (None, None),
                };
                let fwd_branch = ControlFlow::Branch(BranchRegion {
                    cond: b.cond.clone(),
                    then_body: Box::new(fwd_then),
                    else_body: fwd_else.map(Box::new),
                });
                let bwd_branch = ControlFlow::Branch(BranchRegion {
                    cond: CondExpr::StoredFlag(flag.clone()),
                    then_body: Box::new(bwd_then),
                    else_body: bwd_else.map(Box::new),
                });
                Ok((
                    ControlFlow::Sequence(vec![store_branch, fwd_branch]),
                    bwd_branch,
                ))
            }
        }
    }

    // --------------------------------------------------------------------
    // state reversal
    // --------------------------------------------------------------------

    fn reverse_state(&mut self, sid: usize) -> Result<(ControlFlow, ControlFlow), AdError> {
        let state = &self.fwd.states[sid];
        let graph = state.graph.clone();
        let pos = *self.state_pos.get(&sid).unwrap_or(&usize::MAX);
        let marked = self.ccs.nodes_of(sid);

        let cloned_id = self.out.add_state(State {
            name: state.name.clone(),
            graph: graph.clone(),
        });

        if marked.is_empty() {
            return Ok((
                ControlFlow::State(cloned_id),
                ControlFlow::Sequence(Vec::new()),
            ));
        }

        let order = graph
            .topological_order()
            .ok_or_else(|| AdError::Malformed(format!("cyclic state `{}`", state.name)))?;

        let mut tape_states: Vec<ControlFlow> = Vec::new();
        let mut adjoint_states: Vec<ControlFlow> = Vec::new();

        for &node in order.iter().rev() {
            if !marked.contains(&node) {
                continue;
            }
            match &graph.nodes[node] {
                DfNode::Access(_) => {}
                DfNode::Tasklet(t) => {
                    let (tapes, adjoints) =
                        self.reverse_tasklet(&graph, node, t, pos, &state.name, None)?;
                    tape_states.extend(tapes);
                    adjoint_states.extend(adjoints);
                }
                DfNode::MapScope(m) => {
                    let (tapes, adjoints) = self.reverse_map(&graph, node, m, pos, &state.name)?;
                    tape_states.extend(tapes);
                    adjoint_states.extend(adjoints);
                }
                DfNode::Library(op) => {
                    let (tapes, adjoints) =
                        self.reverse_library(&graph, node, op, pos, &state.name)?;
                    tape_states.extend(tapes);
                    adjoint_states.extend(adjoints);
                }
            }
        }

        let mut fwd_items = tape_states;
        fwd_items.push(ControlFlow::State(cloned_id));
        Ok((
            ControlFlow::Sequence(fwd_items),
            ControlFlow::Sequence(adjoint_states),
        ))
    }

    /// Decide how the backward pass obtains the forward value of a scalar
    /// element read `array[idx]` that happens in a state at position `pos`:
    /// either directly (safe) or through a per-iteration tape.
    ///
    /// Returns the memlet the backward pass should read, and optionally the
    /// tape-store state to insert in the forward pass.
    fn forward_scalar_value(
        &mut self,
        array: &str,
        idx: &[SymExpr],
        pos: usize,
    ) -> Result<(Memlet, Option<ControlFlow>), AdError> {
        if self.is_safe_read(array, pos) {
            self.note_candidate(array);
            return Ok((Memlet::element(array, idx.to_vec()), None));
        }
        // Tape: one scalar per enclosing loop iteration.
        let tape = self.fresh("fwd_store");
        let mut shape: Vec<SymExpr> = self
            .loop_stack
            .iter()
            .map(|l| l.trips.clone())
            .collect::<Vec<_>>()
            .iter()
            .map(|t| self.invariant_bound(t))
            .collect();
        if shape.is_empty() {
            shape.push(SymExpr::int(1));
        }
        self.out
            .add_array(tape.clone(), ArrayDesc::transient(shape))
            .map_err(|e| AdError::Malformed(e.to_string()))?;
        self.stored.push(tape.clone());
        let mut tape_idx: Vec<SymExpr> = self.loop_stack.iter().map(|l| l.offset()).collect();
        if tape_idx.is_empty() {
            tape_idx.push(SymExpr::int(0));
        }
        // Store state: tape[offsets] = array[idx]
        let mut g = DataflowGraph::new();
        let src = g.add_access(array);
        let t = g.add_tasklet(Tasklet::new("store", "out", ScalarExpr::input("v")));
        let dst = g.add_access(&tape);
        g.add_edge(
            src,
            None,
            t,
            Some("v"),
            Memlet::element(array, idx.to_vec()),
        );
        g.add_edge(
            t,
            Some("out"),
            dst,
            None,
            Memlet::element(&tape, tape_idx.clone()),
        );
        let sid = self.out.add_state(State {
            name: format!("{tape}_store"),
            graph: g,
        });
        Ok((
            Memlet::element(&tape, tape_idx),
            Some(ControlFlow::State(sid)),
        ))
    }

    /// Decide how the backward pass obtains the forward value of a whole
    /// array read in a map body or library node at position `pos`.  Returns
    /// the container name holding the value (`array` itself when safe, or a
    /// stored copy), the leading tape index expressions to prepend to element
    /// accesses, and optionally the copy state to insert in the forward pass.
    fn forward_array_value(
        &mut self,
        array: &str,
        pos: usize,
    ) -> Result<(String, Vec<SymExpr>, Option<ControlFlow>), AdError> {
        if self.is_safe_read(array, pos) {
            self.note_candidate(array);
            return Ok((array.to_string(), Vec::new(), None));
        }
        let desc = self.fwd.arrays[array].clone();
        let tape = self.fresh(&format!("stored_{array}"));
        let trips: Vec<SymExpr> = self.loop_stack.iter().map(|l| l.trips.clone()).collect();
        let lead: Vec<SymExpr> = trips.iter().map(|t| self.invariant_bound(t)).collect();
        let mut shape = lead.clone();
        shape.extend(desc.shape.clone());
        self.out
            .add_array(tape.clone(), ArrayDesc::transient(shape))
            .map_err(|e| AdError::Malformed(e.to_string()))?;
        self.stored.push(tape.clone());
        let offsets: Vec<SymExpr> = self.loop_stack.iter().map(|l| l.offset()).collect();

        // Copy state: map over the array dims, tape[offsets..., q...] = array[q...]
        let params: Vec<String> = (0..desc.shape.len()).map(|d| format!("__c{d}")).collect();
        let qidx: Vec<SymExpr> = params.iter().map(|p| SymExpr::sym(p.clone())).collect();
        let mut body = DataflowGraph::new();
        let src = body.add_access(array);
        let t = body.add_tasklet(Tasklet::new("copy", "out", ScalarExpr::input("v")));
        let dst = body.add_access(&tape);
        body.add_edge(
            src,
            None,
            t,
            Some("v"),
            Memlet::element(array, qidx.clone()),
        );
        let mut tidx = offsets.clone();
        tidx.extend(qidx.clone());
        body.add_edge(t, Some("out"), dst, None, Memlet::element(&tape, tidx));
        let mut g = DataflowGraph::new();
        let srcn = g.add_access(array);
        let map = g.add_map(MapScope {
            params,
            ranges: desc
                .shape
                .iter()
                .map(|d| (SymExpr::int(0), d.clone()))
                .collect(),
            body,
            parallel: true,
        });
        let dstn = g.add_access(&tape);
        g.add_edge(srcn, None, map, None, Memlet::all(array));
        g.add_edge(map, None, dstn, None, Memlet::all(&tape));
        let sid = self.out.add_state(State {
            name: format!("{tape}_copy"),
            graph: g,
        });
        Ok((tape, offsets, Some(ControlFlow::State(sid))))
    }

    /// Record a store/recompute candidate: a transient, written exactly once
    /// outside of any loop, whose value the backward pass reads directly.
    fn note_candidate(&mut self, array: &str) {
        let Some(desc) = self.fwd.arrays.get(array) else {
            return;
        };
        if !desc.transient {
            return;
        }
        if self.written_in_loop.contains(array) {
            return;
        }
        let writes = self.write_pos.get(array).cloned().unwrap_or_default();
        if writes.len() != 1 {
            return;
        }
        if self.candidates.iter().any(|c| c.array == array) {
            return;
        }
        self.candidates.push(RecomputeCandidate {
            array: array.to_string(),
            producer_pos: writes[0],
        });
    }

    // --------------------------------------------------------------------
    // tasklet reversal
    // --------------------------------------------------------------------

    /// Reverse one tasklet.  When `map_ctx` is `Some`, the tasklet lives in a
    /// map body and the returned adjoint body is wrapped by the caller; in
    /// that case forwarded whole-array copies are used instead of scalar
    /// tapes.
    #[allow(clippy::type_complexity)]
    fn reverse_tasklet(
        &mut self,
        graph: &DataflowGraph,
        node: NodeId,
        tasklet: &Tasklet,
        pos: usize,
        state_name: &str,
        map_ctx: Option<&MapScope>,
    ) -> Result<(Vec<ControlFlow>, Vec<ControlFlow>), AdError> {
        if tasklet.code.len() != 1 {
            return Err(AdError::Unsupported(format!(
                "multi-assignment tasklet `{}` in the CCS",
                tasklet.label
            )));
        }
        let (_, expr) = &tasklet.code[0];

        // Gather reads (connector -> memlet) and the single write.
        let mut reads: Vec<(String, Memlet)> = Vec::new();
        for e in graph.in_edges(node) {
            let conn = e
                .dst_conn
                .clone()
                .ok_or_else(|| AdError::Malformed("tasklet in-edge without connector".into()))?;
            reads.push((conn, e.memlet.clone()));
        }
        let out_edges = graph.out_edges(node);
        if out_edges.len() != 1 {
            return Err(AdError::Unsupported(format!(
                "tasklet `{}` with {} output edges",
                tasklet.label,
                out_edges.len()
            )));
        }
        let out_memlet = out_edges[0].memlet.clone();
        let dst_array = out_memlet.data.clone();
        let accumulate = out_memlet.wcr.is_some();
        let Some(grad_dst) = self.grad(&dst_array) else {
            // Output does not contribute to the dependent variable.
            return Ok((Vec::new(), Vec::new()));
        };

        // Which inputs receive gradient contributions?
        let contributing: Vec<(String, Memlet)> = reads
            .iter()
            .filter(|(_, m)| self.grads.contains_key(&m.data))
            .cloned()
            .collect();

        // Which connector values are needed by the adjoint expressions?
        let mut needed: BTreeSet<String> = BTreeSet::new();
        for (conn, _) in &contributing {
            needed.extend(expr.derivative(conn).simplified().inputs());
        }

        // Resolve forwarded values for each needed connector.
        let mut tape_states = Vec::new();
        let mut value_memlets: HashMap<String, Memlet> = HashMap::new();
        for conn in &needed {
            let Some((_, memlet)) = reads.iter().find(|(c, _)| c == conn) else {
                return Err(AdError::Malformed(format!(
                    "tasklet `{}` references undefined connector `{conn}`",
                    tasklet.label
                )));
            };
            let (value_memlet, store) = if map_ctx.is_some() {
                // Inside a map body: forward whole-array copies so that the
                // per-point index expressions keep working.
                let (container, offsets, store) = self.forward_array_value(&memlet.data, pos)?;
                let mut idx = offsets;
                idx.extend(memlet.subset.eval_symbolic());
                (Memlet::element(container, idx), store)
            } else {
                self.forward_scalar_value(&memlet.data, &memlet.subset.eval_symbolic(), pos)?
            };
            if let Some(s) = store {
                tape_states.push(s);
            }
            value_memlets.insert(conn.clone(), value_memlet);
        }

        // Build the adjoint tasklet: one output per contributing input plus an
        // optional clear of the destination gradient on overwrites.
        let mut code: Vec<(String, ScalarExpr)> = Vec::new();
        let mut grad_writes: Vec<(String, Memlet)> = Vec::new(); // (connector, memlet)
        if !accumulate {
            code.push(("clear".to_string(), ScalarExpr::Const(0.0)));
            grad_writes.push((
                "clear".to_string(),
                Memlet {
                    data: grad_dst.clone(),
                    subset: out_memlet.subset.clone(),
                    wcr: None,
                },
            ));
        }
        for (k, (conn, memlet)) in contributing.iter().enumerate() {
            let d = expr.derivative(conn).simplified();
            let contrib = ScalarExpr::Bin(
                dace_sdfg::BinOp::Mul,
                Box::new(d),
                Box::new(ScalarExpr::input("gout")),
            )
            .simplified();
            let out_conn = format!("d{k}");
            code.push((out_conn.clone(), contrib));
            let grad_src = self.grads[&memlet.data].clone();
            grad_writes.push((
                out_conn,
                Memlet {
                    data: grad_src,
                    subset: memlet.subset.clone(),
                    wcr: Some(dace_sdfg::Wcr::Sum),
                },
            ));
        }

        let adjoint = Tasklet::multi(format!("adj_{}", tasklet.label), code);
        let mut g = DataflowGraph::new();
        let adj_node = g.add_tasklet(adjoint);
        // gout read.
        let gout_acc = g.add_access(&grad_dst);
        g.add_edge(
            gout_acc,
            None,
            adj_node,
            Some("gout"),
            Memlet {
                data: grad_dst.clone(),
                subset: out_memlet.subset.clone(),
                wcr: None,
            },
        );
        // forwarded value reads.
        let mut read_access: HashMap<String, NodeId> = HashMap::new();
        for (conn, memlet) in &value_memlets {
            let acc = *read_access
                .entry(memlet.data.clone())
                .or_insert_with(|| g.add_access(&memlet.data));
            g.add_edge(acc, None, adj_node, Some(conn), memlet.clone());
        }
        // gradient writes (clear first, then accumulations — edge order is the
        // write order used by the executor).
        let mut write_access: HashMap<String, NodeId> = HashMap::new();
        for (conn, memlet) in &grad_writes {
            let acc = *write_access
                .entry(memlet.data.clone())
                .or_insert_with(|| g.add_access(&memlet.data));
            g.add_edge(adj_node, Some(conn), acc, None, memlet.clone());
        }

        if map_ctx.is_some() {
            // The caller wraps this body in a map; return it as a single
            // pseudo-state the caller will unwrap.
            let sid = self.out.add_state(State {
                name: format!("adjbody_{state_name}"),
                graph: g,
            });
            return Ok((tape_states, vec![ControlFlow::State(sid)]));
        }

        let sid = self.out.add_state(State {
            name: format!("adj_{state_name}_{}", self.counter),
            graph: g,
        });
        self.counter += 1;
        Ok((tape_states, vec![ControlFlow::State(sid)]))
    }

    // --------------------------------------------------------------------
    // map reversal
    // --------------------------------------------------------------------

    fn reverse_map(
        &mut self,
        _graph: &DataflowGraph,
        _node: NodeId,
        map: &MapScope,
        pos: usize,
        state_name: &str,
    ) -> Result<(Vec<ControlFlow>, Vec<ControlFlow>), AdError> {
        // Locate the single tasklet in the body (the shape produced by the
        // frontend and by this module's own lowering).
        let tasklet_nodes: Vec<NodeId> = map
            .body
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| matches!(n, DfNode::Tasklet(_)).then_some(i))
            .collect();
        if tasklet_nodes.len() != 1 {
            return Err(AdError::Unsupported(format!(
                "map in state `{state_name}` with {} tasklets (expected 1)",
                tasklet_nodes.len()
            )));
        }
        let tnode = tasklet_nodes[0];
        let DfNode::Tasklet(tasklet) = &map.body.nodes[tnode] else {
            unreachable!()
        };
        let (tape_states, body_states) = self.reverse_tasklet(
            &map.body.clone(),
            tnode,
            tasklet,
            pos,
            state_name,
            Some(map),
        )?;
        if body_states.is_empty() {
            return Ok((tape_states, Vec::new()));
        }
        let ControlFlow::State(body_id) = body_states[0] else {
            return Err(AdError::Malformed("unexpected adjoint body shape".into()));
        };
        let body_graph = self.out.states[body_id].graph.clone();

        // Wrap the adjoint body in a map with the same range.
        let mut g = DataflowGraph::new();
        let mut read_nodes = Vec::new();
        for array in body_graph.reads().into_keys() {
            read_nodes.push((array.clone(), g.add_access(&array)));
        }
        let map_node = g.add_map(MapScope {
            params: map.params.clone(),
            ranges: map.ranges.clone(),
            body: body_graph.clone(),
            parallel: true,
        });
        for (array, n) in read_nodes {
            g.add_edge(n, None, map_node, None, Memlet::all(array));
        }
        for array in body_graph.writes().into_keys() {
            let w = g.add_access(&array);
            g.add_edge(map_node, None, w, None, Memlet::all(array));
        }
        let sid = self.out.add_state(State {
            name: format!("adjmap_{state_name}_{}", self.counter),
            graph: g,
        });
        self.counter += 1;
        Ok((tape_states, vec![ControlFlow::State(sid)]))
    }

    // --------------------------------------------------------------------
    // library node reversal
    // --------------------------------------------------------------------

    fn reverse_library(
        &mut self,
        graph: &DataflowGraph,
        node: NodeId,
        op: &LibraryOp,
        pos: usize,
        state_name: &str,
    ) -> Result<(Vec<ControlFlow>, Vec<ControlFlow>), AdError> {
        // Map connectors to arrays.
        let mut in_arrays: HashMap<String, String> = HashMap::new();
        for e in graph.in_edges(node) {
            if let Some(conn) = &e.dst_conn {
                in_arrays.insert(conn.clone(), e.memlet.data.clone());
            }
        }
        let out_edges = graph.out_edges(node);
        if out_edges.len() != 1 {
            return Err(AdError::Unsupported(format!(
                "library node in `{state_name}` with {} outputs",
                out_edges.len()
            )));
        }
        let out_array = out_edges[0].memlet.data.clone();
        let out_wcr = out_edges[0].memlet.wcr.is_some()
            || matches!(op, LibraryOp::SumReduce { accumulate: true });
        let Some(grad_out) = self.grad(&out_array) else {
            return Ok((Vec::new(), Vec::new()));
        };

        let mut tape_states: Vec<ControlFlow> = Vec::new();
        let mut adjoints: Vec<ControlFlow> = Vec::new();

        // Resolve a forwarded whole-array value for a library input.
        let mut forwarded = |ctx: &mut Ctx, conn: &str| -> Result<String, AdError> {
            let array = in_arrays
                .get(conn)
                .ok_or_else(|| AdError::Malformed(format!("library node missing input `{conn}`")))?
                .clone();
            if ctx.is_safe_read(&array, pos) {
                ctx.note_candidate(&array);
                Ok(array)
            } else if ctx.loop_stack.is_empty() {
                let (container, _, store) = ctx.forward_array_value(&array, pos)?;
                if let Some(s) = store {
                    tape_states.push(s);
                }
                Ok(container)
            } else {
                Err(AdError::Unsupported(format!(
                    "library node input `{array}` is overwritten inside a loop"
                )))
            }
        };

        match op {
            LibraryOp::MatMul => {
                let a = in_arrays.get("A").cloned().unwrap_or_default();
                let b = in_arrays.get("B").cloned().unwrap_or_default();
                let ga = self.grad(&a);
                let gb = self.grad(&b);
                if ga.is_some() {
                    let b_val = forwarded(self, "B")?;
                    // grad_A += grad_out @ b_val^T
                    let bt = self.add_transient_like(&b_val, true)?;
                    adjoints.push(self.transpose_state(&b_val, &bt, state_name));
                    adjoints.push(self.matmul_accumulate_state(
                        &grad_out,
                        &bt,
                        &ga.clone().unwrap(),
                        state_name,
                    ));
                }
                if gb.is_some() {
                    let a_val = forwarded(self, "A")?;
                    let at = self.add_transient_like(&a_val, true)?;
                    adjoints.push(self.transpose_state(&a_val, &at, state_name));
                    adjoints.push(self.matmul_accumulate_state(
                        &at,
                        &grad_out,
                        &gb.clone().unwrap(),
                        state_name,
                    ));
                }
                if !out_wcr {
                    adjoints.push(
                        self.zero_state(&grad_out, &self.fwd.arrays[&out_array].shape.clone()),
                    );
                }
            }
            LibraryOp::MatVec => {
                let a = in_arrays.get("A").cloned().unwrap_or_default();
                let x = in_arrays.get("x").cloned().unwrap_or_default();
                if self.grads.contains_key(&a) {
                    let x_val = forwarded(self, "x")?;
                    // grad_A[i,j] += grad_out[i] * x_val[j]
                    adjoints.push(self.outer_accumulate_state(
                        &grad_out,
                        &x_val,
                        &self.grads[&a].clone(),
                        &self.fwd.arrays[&a].shape.clone(),
                        state_name,
                    ));
                }
                if self.grads.contains_key(&x) {
                    let a_val = forwarded(self, "A")?;
                    let at = self.add_transient_like(&a_val, true)?;
                    adjoints.push(self.transpose_state(&a_val, &at, state_name));
                    adjoints.push(self.matvec_accumulate_state(
                        &at,
                        &grad_out,
                        &self.grads[&x].clone(),
                        state_name,
                    ));
                }
                if !out_wcr {
                    adjoints.push(
                        self.zero_state(&grad_out, &self.fwd.arrays[&out_array].shape.clone()),
                    );
                }
            }
            LibraryOp::Transpose => {
                let a = in_arrays.get("A").cloned().unwrap_or_default();
                if let Some(ga) = self.grad(&a) {
                    // grad_A[i,j] += grad_out[j,i]
                    let shape = self.fwd.arrays[&a].shape.clone();
                    adjoints
                        .push(self.transpose_accumulate_state(&grad_out, &ga, &shape, state_name));
                }
                if !out_wcr {
                    adjoints.push(
                        self.zero_state(&grad_out, &self.fwd.arrays[&out_array].shape.clone()),
                    );
                }
            }
            LibraryOp::SumReduce { .. } => {
                let a = in_arrays.get("IN").cloned().unwrap_or_default();
                if let Some(ga) = self.grad(&a) {
                    let shape = self.fwd.arrays[&a].shape.clone();
                    adjoints
                        .push(self.broadcast_accumulate_state(&grad_out, &ga, &shape, state_name));
                }
                if !out_wcr {
                    adjoints.push(self.zero_state(&grad_out, &[SymExpr::int(1)]));
                }
            }
            LibraryOp::Copy => {
                let a = in_arrays.get("A").cloned().unwrap_or_default();
                if let Some(ga) = self.grad(&a) {
                    let shape = self.fwd.arrays[&a].shape.clone();
                    adjoints
                        .push(self.identity_accumulate_state(&grad_out, &ga, &shape, state_name));
                }
                if !out_wcr {
                    adjoints.push(
                        self.zero_state(&grad_out, &self.fwd.arrays[&out_array].shape.clone()),
                    );
                }
            }
        }

        Ok((tape_states, adjoints))
    }

    // --------------------------------------------------------------------
    // helper state builders for library adjoints
    // --------------------------------------------------------------------

    fn add_transient_like(&mut self, array: &str, transposed: bool) -> Result<String, AdError> {
        let desc = self
            .out
            .arrays
            .get(array)
            .or_else(|| self.fwd.arrays.get(array))
            .ok_or_else(|| AdError::Malformed(format!("unknown array `{array}`")))?
            .clone();
        let mut shape = desc.shape.clone();
        if transposed && shape.len() == 2 {
            shape.swap(0, 1);
        }
        let name = self.fresh("adj_tmp");
        self.out
            .add_array(name.clone(), ArrayDesc::transient(shape))
            .map_err(|e| AdError::Malformed(e.to_string()))?;
        Ok(name)
    }

    fn transpose_state(&mut self, src: &str, dst: &str, label: &str) -> ControlFlow {
        let mut g = DataflowGraph::new();
        let a = g.add_access(src);
        let t = g.add_library(LibraryOp::Transpose);
        let b = g.add_access(dst);
        g.add_edge(a, None, t, Some("A"), Memlet::all(src));
        g.add_edge(t, Some("B"), b, None, Memlet::all(dst));
        let n = self.next();
        ControlFlow::State(self.out.add_state(State {
            name: format!("adj_transpose_{label}_{n}"),
            graph: g,
        }))
    }

    fn matmul_accumulate_state(&mut self, a: &str, b: &str, dst: &str, label: &str) -> ControlFlow {
        let mut g = DataflowGraph::new();
        let an = g.add_access(a);
        let bn = g.add_access(b);
        let mm = g.add_library(LibraryOp::MatMul);
        let cn = g.add_access(dst);
        g.add_edge(an, None, mm, Some("A"), Memlet::all(a));
        g.add_edge(bn, None, mm, Some("B"), Memlet::all(b));
        g.add_edge(mm, Some("C"), cn, None, Memlet::all(dst).with_wcr_sum());
        let n = self.next();
        ControlFlow::State(self.out.add_state(State {
            name: format!("adj_matmul_{label}_{n}"),
            graph: g,
        }))
    }

    fn matvec_accumulate_state(&mut self, a: &str, x: &str, dst: &str, label: &str) -> ControlFlow {
        let mut g = DataflowGraph::new();
        let an = g.add_access(a);
        let xn = g.add_access(x);
        let mv = g.add_library(LibraryOp::MatVec);
        let yn = g.add_access(dst);
        g.add_edge(an, None, mv, Some("A"), Memlet::all(a));
        g.add_edge(xn, None, mv, Some("x"), Memlet::all(x));
        g.add_edge(mv, Some("y"), yn, None, Memlet::all(dst).with_wcr_sum());
        let n = self.next();
        ControlFlow::State(self.out.add_state(State {
            name: format!("adj_matvec_{label}_{n}"),
            graph: g,
        }))
    }

    /// `dst[i, j] += gy[i] * x[j]` over the 2-D `shape`.
    fn outer_accumulate_state(
        &mut self,
        gy: &str,
        x: &str,
        dst: &str,
        shape: &[SymExpr],
        label: &str,
    ) -> ControlFlow {
        let (i, j) = (SymExpr::sym("__oi"), SymExpr::sym("__oj"));
        let mut body = DataflowGraph::new();
        let gyn = body.add_access(gy);
        let xn = body.add_access(x);
        let t = body.add_tasklet(Tasklet::new(
            "outer",
            "out",
            ScalarExpr::input("g").mul(ScalarExpr::input("v")),
        ));
        let dn = body.add_access(dst);
        body.add_edge(
            gyn,
            None,
            t,
            Some("g"),
            Memlet::element(gy, vec![i.clone()]),
        );
        body.add_edge(xn, None, t, Some("v"), Memlet::element(x, vec![j.clone()]));
        body.add_edge(
            t,
            Some("out"),
            dn,
            None,
            Memlet::element(dst, vec![i.clone(), j.clone()]).with_wcr_sum(),
        );
        let mut g = DataflowGraph::new();
        let g1 = g.add_access(gy);
        let g2 = g.add_access(x);
        let map = g.add_map(MapScope {
            params: vec!["__oi".into(), "__oj".into()],
            ranges: vec![
                (SymExpr::int(0), shape[0].clone()),
                (SymExpr::int(0), shape[1].clone()),
            ],
            body,
            parallel: true,
        });
        let w = g.add_access(dst);
        g.add_edge(g1, None, map, None, Memlet::all(gy));
        g.add_edge(g2, None, map, None, Memlet::all(x));
        g.add_edge(map, None, w, None, Memlet::all(dst).with_wcr_sum());
        let n = self.next();
        ControlFlow::State(self.out.add_state(State {
            name: format!("adj_outer_{label}_{n}"),
            graph: g,
        }))
    }

    /// `dst[i, j] += src[j, i]` over `shape` (the shape of `dst`).
    fn transpose_accumulate_state(
        &mut self,
        src: &str,
        dst: &str,
        shape: &[SymExpr],
        label: &str,
    ) -> ControlFlow {
        let (i, j) = (SymExpr::sym("__ti"), SymExpr::sym("__tj"));
        let mut body = DataflowGraph::new();
        let s = body.add_access(src);
        let t = body.add_tasklet(Tasklet::new("tacc", "out", ScalarExpr::input("v")));
        let d = body.add_access(dst);
        body.add_edge(
            s,
            None,
            t,
            Some("v"),
            Memlet::element(src, vec![j.clone(), i.clone()]),
        );
        body.add_edge(
            t,
            Some("out"),
            d,
            None,
            Memlet::element(dst, vec![i.clone(), j.clone()]).with_wcr_sum(),
        );
        self.wrap_map_state(
            body,
            vec![("__ti", shape[0].clone()), ("__tj", shape[1].clone())],
            &[src],
            dst,
            &format!("adj_transposeacc_{label}"),
        )
    }

    /// `dst[q...] += src[q...]` over `shape`.
    fn identity_accumulate_state(
        &mut self,
        src: &str,
        dst: &str,
        shape: &[SymExpr],
        label: &str,
    ) -> ControlFlow {
        let params: Vec<String> = (0..shape.len()).map(|d| format!("__q{d}")).collect();
        let idx: Vec<SymExpr> = params.iter().map(|p| SymExpr::sym(p.clone())).collect();
        let mut body = DataflowGraph::new();
        let s = body.add_access(src);
        let t = body.add_tasklet(Tasklet::new("idacc", "out", ScalarExpr::input("v")));
        let d = body.add_access(dst);
        body.add_edge(s, None, t, Some("v"), Memlet::element(src, idx.clone()));
        body.add_edge(
            t,
            Some("out"),
            d,
            None,
            Memlet::element(dst, idx).with_wcr_sum(),
        );
        let ranges: Vec<(&str, SymExpr)> = params
            .iter()
            .map(|p| {
                (
                    p.as_str(),
                    shape[params.iter().position(|x| x == p).unwrap()].clone(),
                )
            })
            .collect();
        self.wrap_map_state(body, ranges, &[src], dst, &format!("adj_copy_{label}"))
    }

    /// `dst[q...] += scalar_src[0]` over `shape` (sum-reduction adjoint).
    fn broadcast_accumulate_state(
        &mut self,
        scalar_src: &str,
        dst: &str,
        shape: &[SymExpr],
        label: &str,
    ) -> ControlFlow {
        let params: Vec<String> = (0..shape.len()).map(|d| format!("__b{d}")).collect();
        let idx: Vec<SymExpr> = params.iter().map(|p| SymExpr::sym(p.clone())).collect();
        let mut body = DataflowGraph::new();
        let s = body.add_access(scalar_src);
        let t = body.add_tasklet(Tasklet::new("bcast", "out", ScalarExpr::input("g")));
        let d = body.add_access(dst);
        body.add_edge(
            s,
            None,
            t,
            Some("g"),
            Memlet::element(scalar_src, vec![SymExpr::int(0)]),
        );
        body.add_edge(
            t,
            Some("out"),
            d,
            None,
            Memlet::element(dst, idx).with_wcr_sum(),
        );
        let ranges: Vec<(&str, SymExpr)> = params
            .iter()
            .enumerate()
            .map(|(k, p)| (p.as_str(), shape[k].clone()))
            .collect();
        self.wrap_map_state(
            body,
            ranges,
            &[scalar_src],
            dst,
            &format!("adj_bcast_{label}"),
        )
    }

    /// `array[q...] = 0` over `shape` (gradient clearing, Fig. 4).
    fn zero_state(&mut self, array: &str, shape: &[SymExpr]) -> ControlFlow {
        let params: Vec<String> = (0..shape.len()).map(|d| format!("__z{d}")).collect();
        let idx: Vec<SymExpr> = params.iter().map(|p| SymExpr::sym(p.clone())).collect();
        let mut body = DataflowGraph::new();
        let t = body.add_tasklet(Tasklet::new("zero", "out", ScalarExpr::Const(0.0)));
        let d = body.add_access(array);
        body.add_edge(t, Some("out"), d, None, Memlet::element(array, idx));
        let ranges: Vec<(&str, SymExpr)> = params
            .iter()
            .enumerate()
            .map(|(k, p)| (p.as_str(), shape[k].clone()))
            .collect();
        self.wrap_map_state(body, ranges, &[], array, &format!("clear_{array}"))
    }

    fn wrap_map_state(
        &mut self,
        body: DataflowGraph,
        ranges: Vec<(&str, SymExpr)>,
        reads: &[&str],
        write: &str,
        label: &str,
    ) -> ControlFlow {
        let mut g = DataflowGraph::new();
        let mut read_nodes = Vec::new();
        for r in reads {
            read_nodes.push((r.to_string(), g.add_access(*r)));
        }
        let map = g.add_map(MapScope {
            params: ranges.iter().map(|(p, _)| p.to_string()).collect(),
            ranges: ranges
                .iter()
                .map(|(_, e)| (SymExpr::int(0), e.clone()))
                .collect(),
            body,
            parallel: true,
        });
        let w = g.add_access(write);
        for (name, n) in read_nodes {
            g.add_edge(n, None, map, None, Memlet::all(name));
        }
        g.add_edge(map, None, w, None, Memlet::all(write));
        let n = self.next();
        ControlFlow::State(self.out.add_state(State {
            name: format!("{label}_{n}"),
            graph: g,
        }))
    }

    fn next(&mut self) -> usize {
        self.counter += 1;
        self.counter
    }
}

/// Collect, for every array, the forward-order positions of states writing it
/// and whether any of those writes happens inside a loop.
fn collect_write_info(
    sdfg: &Sdfg,
    cf: &ControlFlow,
    loop_depth: usize,
    state_pos: &HashMap<usize, usize>,
    write_pos: &mut BTreeMap<String, Vec<usize>>,
    written_in_loop: &mut BTreeSet<String>,
) {
    match cf {
        ControlFlow::State(id) => {
            let pos = *state_pos.get(id).unwrap_or(&usize::MAX);
            for array in sdfg.states[*id].graph.writes().into_keys() {
                write_pos.entry(array.clone()).or_default().push(pos);
                if loop_depth > 0 {
                    written_in_loop.insert(array);
                }
            }
        }
        ControlFlow::Sequence(children) => {
            for c in children {
                collect_write_info(sdfg, c, loop_depth, state_pos, write_pos, written_in_loop);
            }
        }
        ControlFlow::Loop(l) => collect_write_info(
            sdfg,
            &l.body,
            loop_depth + 1,
            state_pos,
            write_pos,
            written_in_loop,
        ),
        ControlFlow::Branch(b) => {
            collect_write_info(
                sdfg,
                &b.then_body,
                loop_depth,
                state_pos,
                write_pos,
                written_in_loop,
            );
            if let Some(e) = &b.else_body {
                collect_write_info(sdfg, e, loop_depth, state_pos, write_pos, written_in_loop);
            }
        }
    }
}

/// Extension used above: symbolic element indices of a subset (panics on
/// range subsets, which never reach the scalar-value path).
trait SubsetExt {
    fn eval_symbolic(&self) -> Vec<SymExpr>;
}

impl SubsetExt for dace_sdfg::Subset {
    fn eval_symbolic(&self) -> Vec<SymExpr> {
        self.0
            .iter()
            .map(|r| match r {
                dace_sdfg::IndexRange::Index(e) => e.clone(),
                dace_sdfg::IndexRange::Range { start, .. } => start.clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dace_frontend::{elem, ArrayExpr, ProgramBuilder};

    fn simple_chain() -> Sdfg {
        // Y = X * 3; Z = sin(Y); OUT = sum(Z)
        let mut b = ProgramBuilder::new("chain");
        let n = b.symbol("N");
        b.add_input("X", vec![n.clone()]).unwrap();
        b.add_transient("Y", vec![n.clone()]).unwrap();
        b.add_transient("Z", vec![n.clone()]).unwrap();
        b.add_scalar("OUT").unwrap();
        b.assign("Y", ArrayExpr::a("X").mul(ArrayExpr::s(3.0)));
        b.assign("Z", ArrayExpr::a("Y").sin());
        b.sum_into("OUT", "Z", false);
        b.build().unwrap()
    }

    #[test]
    fn plan_declares_gradient_containers() {
        let fwd = simple_chain();
        let plan = generate_backward(&fwd, "OUT", &["X"]).unwrap();
        assert!(plan.gradients.contains_key("X"));
        assert!(plan.gradients.contains_key("Y"));
        assert!(plan.gradients.contains_key("OUT"));
        assert!(plan
            .sdfg
            .arrays
            .contains_key(plan.gradient_of("X").unwrap()));
        plan.sdfg.validate_strict().unwrap();
    }

    #[test]
    fn non_scalar_output_is_rejected() {
        let fwd = simple_chain();
        let err = generate_backward(&fwd, "Z", &["X"]).unwrap_err();
        assert!(matches!(err, AdError::NonScalarOutput(_)));
    }

    #[test]
    fn unknown_names_are_rejected() {
        let fwd = simple_chain();
        assert!(matches!(
            generate_backward(&fwd, "NOPE", &["X"]),
            Err(AdError::UnknownOutput(_))
        ));
        assert!(matches!(
            generate_backward(&fwd, "OUT", &["NOPE"]),
            Err(AdError::UnknownInput(_))
        ));
    }

    #[test]
    fn safe_transients_become_candidates() {
        let fwd = simple_chain();
        let plan = generate_backward(&fwd, "OUT", &["X"]).unwrap();
        // sin(Y) needs Y; Y is a transient written once outside loops.
        assert!(plan.candidates.iter().any(|c| c.array == "Y"));
    }

    #[test]
    fn loop_overwrites_produce_tapes() {
        // for i in 1..N: A[i] = A[i] * A[i-1]  (non-linear, in-place)
        let mut b = ProgramBuilder::new("looped");
        let n = b.symbol("N");
        b.add_input("A", vec![n.clone()]).unwrap();
        b.add_scalar("OUT").unwrap();
        let i = SymExpr::sym("i");
        b.for_range("i", 1, n.clone(), |b| {
            b.assign_element(
                "A",
                vec![i.clone()],
                elem("A", vec![i.clone()]).mul(elem("A", vec![i.sub(&SymExpr::int(1))])),
            );
        });
        b.sum_into("OUT", "A", false);
        let fwd = b.build().unwrap();
        let plan = generate_backward(&fwd, "OUT", &["A"]).unwrap();
        assert!(
            !plan.stored.is_empty(),
            "in-place non-linear loop update must allocate at least one tape"
        );
        plan.sdfg.validate_strict().unwrap();
    }

    #[test]
    fn backward_loop_is_reversed() {
        let mut b = ProgramBuilder::new("loopdir");
        let n = b.symbol("N");
        b.add_input("A", vec![n.clone()]).unwrap();
        b.add_scalar("OUT").unwrap();
        let i = SymExpr::sym("i");
        b.for_range("i", 0, n.clone(), |b| {
            b.accumulate_element("OUT", vec![SymExpr::int(0)], elem("A", vec![i.clone()]));
        });
        let fwd = b.build().unwrap();
        let plan = generate_backward(&fwd, "OUT", &["A"]).unwrap();
        // Find the backward loop in the combined cfg: it must have step -1.
        let ControlFlow::Sequence(top) = &plan.sdfg.cfg else {
            panic!()
        };
        let reversed = top[plan.backward_start_index..]
            .iter()
            .any(|cf| matches!(cf, ControlFlow::Loop(l) if l.step == SymExpr::int(-1)));
        assert!(reversed, "backward half must contain a reversed loop");
    }

    #[test]
    fn branch_reversal_stores_conditionals() {
        use dace_sdfg::{CmpOp, CondOperand};
        let mut b = ProgramBuilder::new("branchy");
        let n = b.symbol("N");
        b.add_input("X", vec![n.clone()]).unwrap();
        b.add_input("P", vec![SymExpr::int(1)]).unwrap();
        b.add_transient("Y", vec![n.clone()]).unwrap();
        b.add_scalar("OUT").unwrap();
        b.branch(
            CondExpr::Cmp {
                lhs: CondOperand::Element {
                    array: "P".into(),
                    index: vec![SymExpr::int(0)],
                },
                op: CmpOp::Gt,
                rhs: CondOperand::Const(0.0),
            },
            |b| b.assign("Y", ArrayExpr::a("X").mul(ArrayExpr::s(2.0))),
            Some(Box::new(|b: &mut ProgramBuilder| {
                b.assign("Y", ArrayExpr::a("X").mul(ArrayExpr::s(-3.0)))
            })),
        );
        b.sum_into("OUT", "Y", false);
        let fwd = b.build().unwrap();
        let plan = generate_backward(&fwd, "OUT", &["X"]).unwrap();
        assert!(plan.stored.iter().any(|s| s.starts_with("stored_cond")));
        // Backward half contains a branch on the stored flag.
        let ControlFlow::Sequence(top) = &plan.sdfg.cfg else {
            panic!()
        };
        let has_flag_branch = top[plan.backward_start_index..].iter().any(|cf| {
            matches!(cf, ControlFlow::Branch(br) if matches!(br.cond, CondExpr::StoredFlag(_)))
        });
        assert!(has_flag_branch);
    }
}
