//! # dace-ad
//!
//! Symbolic reverse-mode automatic differentiation over SDFGs with
//! ILP-based automatic checkpointing — the Rust reproduction of the paper's
//! primary contribution.
//!
//! Pipeline (Sections II–IV of the paper):
//!
//! 1. **Critical computation subgraph** — [`dace_sdfg::compute_ccs`] finds the
//!    minimal subgraph through which the independent variables contribute to
//!    the dependent output, propagating across states, loops (fixed point,
//!    no unrolling) and branches (over-approximation pruned at runtime).
//! 2. **Reversal** ([`reverse`]) — every CCS element is reversed in
//!    isolation and the reversed elements are stitched together: tasklets are
//!    differentiated symbolically, maps are reversed with the same ranges,
//!    library nodes map to their adjoints, sequential loops are reversed
//!    compactly (reversed iteration range, no unrolling), branches replay
//!    stored conditionals, gradients accumulate with WCR-sum writes and are
//!    cleared on overwrites.
//! 3. **Forwarding** — values needed by non-linear adjoints are either read
//!    directly (when provably unchanged until the backward pass), stored in
//!    tape containers indexed by the enclosing loop iterations, or
//!    recomputed in the backward pass.
//! 4. **ILP checkpointing** ([`checkpoint`]) — one binary variable per
//!    forwarded container decides store vs. recompute, minimising the
//!    recomputation FLOP cost subject to a peak-memory limit modelled as a
//!    memory-measurement sequence (Section IV), solved with `dace-ilp`.
//!
//! The output of the engine is a single *gradient SDFG*: the augmented
//! forward program followed by the backward program, executable by
//! `dace-runtime` in one memory timeline (which is how the paper measures
//! peak memory for Fig. 13).
//!
//! # Execution shape
//!
//! [`GradientEngine`] follows the runtime's compile-once/run-many model:
//! `new` lowers the gradient SDFG exactly once (through the process-wide
//! plan cache), and `run`, `run_batch`, `run_forward` and
//! `finite_difference` all execute cached programs on persistent sessions.
//! Batched serving ([`GradientEngine::run_batch`]) fans independent input
//! sets across the worker pool over the *same* compiled gradient program,
//! with results bit-identical to a serial loop of `run` calls.
//!
//! ```
//! use std::collections::HashMap;
//! use dace_ad::{AdOptions, GradientEngine};
//! use dace_frontend::{ArrayExpr, ProgramBuilder};
//! use dace_tensor::Tensor;
//!
//! // OUT = sum(X * X)  =>  dOUT/dX = 2 * X
//! let mut b = ProgramBuilder::new("sq");
//! let n = b.symbol("N");
//! b.add_input("X", vec![n.clone()]).unwrap();
//! b.add_transient("T", vec![n.clone()]).unwrap();
//! b.add_scalar("OUT").unwrap();
//! b.assign("T", ArrayExpr::a("X").mul(ArrayExpr::a("X")));
//! b.sum_into("OUT", "T", false);
//! let fwd = b.build().unwrap();
//!
//! let symbols = HashMap::from([("N".to_string(), 3)]);
//! let mut engine =
//!     GradientEngine::new(&fwd, "OUT", &["X"], &symbols, &AdOptions::default()).unwrap();
//! let inputs = HashMap::from([(
//!     "X".to_string(),
//!     Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap(),
//! )]);
//! let result = engine.run(&inputs).unwrap();
//! assert_eq!(result.gradients["X"].data(), &[2.0, 4.0, 6.0]);
//!
//! // Batched serving: N input sets in, N gradient maps out — all items
//! // share the engine's single gradient lowering.
//! let batch = engine.run_batch(&[inputs.clone(), inputs]).unwrap();
//! assert_eq!(batch.items.len(), 2);
//! assert_eq!(batch.batch.plan_cache.misses, 1);
//! ```

#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod engine;
pub mod reverse;

pub use checkpoint::{CheckpointReport, RecomputeCandidate};
pub use engine::{
    BatchGradientResult, EngineError, GatewayGradientClient, GatewayGradientHandle, GradientEngine,
    GradientHandle, GradientResult, GradientServer, ServedGradient,
};
// The serving-layer vocabulary of `GradientEngine::serve` /
// `GradientEngine::register_with`, re-exported so AD-level callers need no
// direct `dace-runtime` dependency.
pub use dace_runtime::{
    BreakerState, FaultPlan, Gateway, GatewayError, GatewayOptions, GatewayStats, ServeError,
    ServeOptions, ServeStats, SubmitOptions, TenantConfig, TenantStats,
};
pub use reverse::{generate_backward, AdError, BackwardPlan};

/// Strategy for the store-vs-recompute (re-materialisation) trade-off.
#[derive(Clone, Debug, PartialEq)]
pub enum CheckpointStrategy {
    /// Store every forwarded value (the default of most frameworks and the
    /// configuration used for the NPBench comparison in the paper).
    StoreAll,
    /// Recompute every candidate that has a recomputation slice.
    RecomputeAll,
    /// Solve the ILP of Section IV under the given peak-memory limit (bytes).
    Ilp {
        /// Peak-memory limit in bytes for the whole gradient computation.
        memory_limit_bytes: usize,
    },
    /// Manually choose which candidates to store (by transient name); all
    /// other candidates are recomputed.  Used by the Fig. 13 sweep over all
    /// 2^k configurations.
    Manual {
        /// Names of candidate containers to store.
        store: Vec<String>,
    },
}

/// Options controlling backward-pass generation.
///
/// Construct with [`AdOptions::default`] (store-all), a struct literal, or
/// the fluent [`AdOptions::builder`]:
///
/// ```
/// use dace_ad::{AdOptions, CheckpointStrategy};
/// let opts = AdOptions::builder()
///     .strategy(CheckpointStrategy::RecomputeAll)
///     .build();
/// assert_eq!(opts.strategy, CheckpointStrategy::RecomputeAll);
/// ```
#[derive(Clone, Debug)]
pub struct AdOptions {
    /// Store/recompute strategy.
    pub strategy: CheckpointStrategy,
}

impl Default for AdOptions {
    fn default() -> Self {
        AdOptions {
            strategy: CheckpointStrategy::StoreAll,
        }
    }
}

impl AdOptions {
    /// Start building options from the defaults.
    pub fn builder() -> AdOptionsBuilder {
        AdOptionsBuilder {
            options: AdOptions::default(),
        }
    }

    /// Builder-style convenience for an ILP strategy under a byte limit.
    pub fn with_memory_limit(memory_limit_bytes: usize) -> AdOptions {
        AdOptions {
            strategy: CheckpointStrategy::Ilp { memory_limit_bytes },
        }
    }
}

/// Fluent builder for [`AdOptions`] (see [`AdOptions::builder`]).
#[derive(Clone, Debug)]
pub struct AdOptionsBuilder {
    options: AdOptions,
}

impl AdOptionsBuilder {
    /// Set the store/recompute strategy.
    pub fn strategy(mut self, strategy: CheckpointStrategy) -> Self {
        self.options.strategy = strategy;
        self
    }

    /// Finish building.
    pub fn build(self) -> AdOptions {
        self.options
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_store_all() {
        assert_eq!(AdOptions::default().strategy, CheckpointStrategy::StoreAll);
    }

    #[test]
    fn builder_sets_strategy() {
        let opts = AdOptions::builder()
            .strategy(CheckpointStrategy::RecomputeAll)
            .build();
        assert_eq!(opts.strategy, CheckpointStrategy::RecomputeAll);
        assert_eq!(
            AdOptions::builder().build().strategy,
            CheckpointStrategy::StoreAll
        );
        assert_eq!(
            AdOptions::with_memory_limit(1024).strategy,
            CheckpointStrategy::Ilp {
                memory_limit_bytes: 1024
            }
        );
    }
}
