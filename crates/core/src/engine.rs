//! The gradient engine: ties together backward generation, checkpointing and
//! execution, and provides finite-difference validation helpers.
//!
//! The engine follows the runtime's compile-once/run-many shape: `new`
//! builds the gradient SDFG and compiles it **once** into a cached
//! [`CompiledProgram`]; `run` binds inputs into a persistent [`Session`]
//! (whose tensor slab is reused across runs) and executes.  Forward-only
//! execution — used by [`GradientEngine::run_forward`] and the
//! finite-difference validation loop — goes through a second cached program
//! that is compiled lazily on first use.  Repeated `run` calls and a whole
//! FD sweep therefore perform exactly one forward lowering and one gradient
//! lowering, which the plan-cache counters on
//! [`dace_runtime::ExecutionReport`] make observable.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dace_runtime::{
    compile, BatchDriver, BatchReport, CompiledProgram, ExecutionReport, Gateway, GatewayError,
    GatewayHandle, RequestHandle, RuntimeError, ServeDriver, ServeError, ServeOptions,
    ServeResponse, ServeStats, Session, SubmitOptions, TenantConfig, TenantStats,
};
use dace_sdfg::Sdfg;
use dace_tensor::Tensor;

use crate::checkpoint::apply_strategy;
use crate::reverse::{generate_backward, AdError, BackwardPlan};
use crate::AdOptions;

/// Errors raised by the gradient engine.
#[derive(Clone, Debug)]
pub enum EngineError {
    /// Backward generation failed.
    Ad(AdError),
    /// Execution failed.
    Runtime(RuntimeError),
    /// An input tensor was provided for a name the program does not declare
    /// (typos used to be silently ignored).
    UnknownInput(String),
    /// The dependent output array does not exist after execution.
    MissingOutput(String),
    /// The dependent output exists but is not a scalar (length-1) container.
    NonScalarOutput {
        /// Name of the output array.
        name: String,
        /// Its actual shape.
        shape: Vec<usize>,
    },
    /// One item of a [`GradientEngine::run_batch`] call panicked.  The
    /// session that served it was discarded; the engine (and its batch
    /// driver's session pool) stay usable.
    BatchItemPanicked {
        /// Index of the panicking item in the submitted batch.
        index: usize,
        /// The panic payload, rendered as text.
        message: String,
    },
    /// A served gradient request failed in the serving layer (deadline
    /// expiry, cancellation, shutdown or a mid-run panic).  Plain runtime
    /// errors of served requests surface as [`EngineError::Runtime`]
    /// instead.
    Serve(ServeError),
    /// A gateway-level call failed (unknown or duplicate tenant, gateway
    /// shutting down).  Per-request serving outcomes still surface as
    /// [`EngineError::Serve`] / [`EngineError::Runtime`].
    Gateway(GatewayError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Ad(e) => write!(f, "AD error: {e}"),
            EngineError::Runtime(e) => write!(f, "runtime error: {e}"),
            EngineError::UnknownInput(name) => {
                write!(f, "input tensor `{name}` does not name a program array")
            }
            EngineError::MissingOutput(name) => {
                write!(f, "output array `{name}` does not exist after execution")
            }
            EngineError::NonScalarOutput { name, shape } => write!(
                f,
                "output array `{name}` has shape {shape:?}, expected a scalar (length 1)"
            ),
            EngineError::BatchItemPanicked { index, message } => {
                write!(f, "batch item {index} panicked: {message}")
            }
            EngineError::Serve(e) => write!(f, "serve error: {e}"),
            EngineError::Gateway(e) => write!(f, "gateway error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<AdError> for EngineError {
    fn from(e: AdError) -> Self {
        EngineError::Ad(e)
    }
}

impl From<RuntimeError> for EngineError {
    fn from(e: RuntimeError) -> Self {
        EngineError::Runtime(e)
    }
}

impl From<GatewayError> for EngineError {
    fn from(e: GatewayError) -> Self {
        EngineError::Gateway(e)
    }
}

/// Result of one gradient computation.
#[derive(Clone, Debug)]
pub struct GradientResult {
    /// Gradient tensors for the requested independent inputs.
    pub gradients: BTreeMap<String, Tensor>,
    /// Value of the dependent output after the forward pass.
    pub output_value: f64,
    /// Execution report of the combined gradient program (single memory
    /// timeline, as the paper measures it), including the plan-cache
    /// counters of the gradient program.
    pub report: ExecutionReport,
}

/// High-level driver: build and compile the gradient SDFG once, run it many
/// times.
///
/// Holds two cached compiled programs: the gradient program (compiled in
/// [`GradientEngine::new`]) and a forward-only program (compiled lazily by
/// [`GradientEngine::run_forward`] / [`GradientEngine::finite_difference`]).
/// Each has a persistent [`Session`] whose tensor slab is reused across
/// runs, so repeated executions pay no lowering and no re-allocation cost.
pub struct GradientEngine {
    plan: BackwardPlan,
    symbols: HashMap<String, i64>,
    forward_sdfg: Sdfg,
    gradient: Session,
    forward: Option<Session>,
    /// Dynamic-admission gradient server over the gradient program, built
    /// lazily by [`GradientEngine::serve`] / [`GradientEngine::run_batch`].
    /// Its session pool persists across requests, so steady-state serving
    /// runs entirely warm.
    server: Option<GradientServer>,
    /// Admission-queue options for the server ([`ServeOptions::workers`]
    /// doubles as the batch fan-out cap).
    serve_options: ServeOptions,
}

/// Result of one batched gradient computation: per-item results in input
/// order plus the aggregate batch statistics.
#[derive(Debug)]
pub struct BatchGradientResult {
    /// One [`GradientResult`] per input set, in submission order.
    pub items: Vec<GradientResult>,
    /// Aggregate throughput/counters of the batch (see
    /// [`dace_runtime::BatchReport`]).
    pub batch: BatchReport,
}

impl GradientEngine {
    /// Build the gradient program for `output` w.r.t. `inputs` under the
    /// given symbol values and checkpointing options, and compile it into a
    /// cached execution plan.
    pub fn new(
        forward: &Sdfg,
        output: &str,
        inputs: &[&str],
        symbols: &HashMap<String, i64>,
        options: &AdOptions,
    ) -> Result<Self, EngineError> {
        let mut plan = generate_backward(forward, output, inputs)?;
        let report = apply_strategy(&mut plan, &options.strategy, symbols)?;
        plan.ilp_report = Some(report);
        let program = compile(&plan.sdfg, symbols)?;
        let gradient = program.session().with_free_hints(&plan.free_hints);
        Ok(GradientEngine {
            gradient,
            forward: None,
            forward_sdfg: forward.clone(),
            plan,
            symbols: symbols.clone(),
            server: None,
            serve_options: ServeOptions::default(),
        })
    }

    /// The generated plan (gradient SDFG plus metadata).
    pub fn plan(&self) -> &BackwardPlan {
        &self.plan
    }

    /// The compiled gradient program (forward + backward in one SDFG).
    pub fn gradient_program(&self) -> &CompiledProgram {
        self.gradient.program()
    }

    /// The compiled forward-only program, if [`GradientEngine::run_forward`]
    /// or [`GradientEngine::finite_difference`] has been called.
    pub fn forward_program(&self) -> Option<&CompiledProgram> {
        self.forward.as_ref().map(|s| s.program())
    }

    /// Run the gradient program on concrete inputs.
    ///
    /// Inputs must name non-transient arrays of the gradient program
    /// (forward arrays that checkpointing demoted to transients are
    /// accepted and ignored, since the program recomputes them); any other
    /// name is an [`EngineError::UnknownInput`].  The dependent output must
    /// exist and be scalar, otherwise [`EngineError::MissingOutput`] /
    /// [`EngineError::NonScalarOutput`] is raised instead of the old
    /// silent-`NaN` behaviour.
    pub fn run(&mut self, inputs: &HashMap<String, Tensor>) -> Result<GradientResult, EngineError> {
        bind_inputs(&self.plan.sdfg, &mut self.gradient, inputs, None)?;
        let report = self.gradient.run()?;
        let output_value = read_scalar_output(&self.gradient, &self.plan.output)?;
        let mut gradients = BTreeMap::new();
        for input in &self.plan.inputs {
            if let Some(gname) = self.plan.gradients.get(input) {
                if let Some(g) = self.gradient.array(gname) {
                    gradients.insert(input.clone(), g.clone());
                }
            }
        }
        Ok(GradientResult {
            gradients,
            output_value,
            report,
        })
    }

    /// Run the gradient program on a batch of independent input sets
    /// concurrently, returning one [`GradientResult`] per set (in
    /// submission order) plus the aggregate [`BatchReport`].
    ///
    /// Implemented as **submit-all-then-wait-all over the dynamic serving
    /// layer** ([`GradientEngine::serve`]): every input set becomes one
    /// individually admitted request, the admission queue coalesces them
    /// back into dispatches, and the call blocks until every handle
    /// resolves.  The static batch API is thereby a special case of the
    /// dynamic one — same sessions, same plan, zero additional lowerings —
    /// and results stay bit-identical to looping [`GradientEngine::run`]
    /// over the same inputs.
    ///
    /// Input validation matches [`GradientEngine::run`] per item; the first
    /// failing item aborts the call with its typed error (other items may
    /// still have executed).  A panicking item yields
    /// [`EngineError::BatchItemPanicked`] and poisons neither the engine
    /// nor the session pool.
    pub fn run_batch(
        &mut self,
        batches: &[HashMap<String, Tensor>],
    ) -> Result<BatchGradientResult, EngineError> {
        let start = Instant::now();
        let server = self.serve();
        // The whole batch should ride one dispatch at full fan-out, not be
        // split into `max_batch`-sized sequential waves.
        server.serve_driver().raise_max_batch(batches.len());
        // Submit all: each input set is admitted individually.  A
        // validation failure cancels the requests already queued (ones
        // already dispatched run to completion and are discarded).
        let mut handles = Vec::with_capacity(batches.len());
        for inputs in batches {
            match server.submit(inputs) {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    for handle in &handles {
                        handle.cancel();
                    }
                    return Err(e);
                }
            }
        }
        // Wait all, preserving submission order.  The first failure aborts
        // the call; still-queued peers are cancelled rather than computed
        // into the void (already-dispatched ones complete and are
        // discarded).
        let mut items = Vec::with_capacity(handles.len());
        let mut totals = (0u64, 0u64); // (tasklets, map points)
        let mut first_error: Option<EngineError> = None;
        for (index, handle) in handles.into_iter().enumerate() {
            if first_error.is_some() {
                handle.cancel();
                continue;
            }
            match handle.wait() {
                Ok(served) => {
                    totals.0 += served.result.report.tasklet_invocations;
                    totals.1 += served.result.report.map_points;
                    items.push(served.result);
                }
                Err(EngineError::Serve(ServeError::Panicked(message))) => {
                    first_error = Some(EngineError::BatchItemPanicked { index, message });
                }
                Err(e) => first_error = Some(e),
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        let elapsed = start.elapsed();
        let n = items.len();
        let driver = server.driver.batch_driver();
        let batch = BatchReport {
            items: n,
            succeeded: n,
            failed: 0,
            workers: driver.fanout_width(n),
            elapsed,
            items_per_sec: dace_runtime::throughput(n, elapsed),
            total_tasklet_invocations: totals.0,
            total_map_points: totals.1,
            plan_cache: driver.program().cache_stats(),
            sessions_created: driver.sessions_created(),
            sessions_reused: driver.sessions_reused(),
            pooled_sessions: driver.pooled_sessions(),
            sessions_discarded: driver.sessions_discarded(),
        };
        Ok(BatchGradientResult { items, batch })
    }

    /// The session-pool driver behind the engine's server, if
    /// [`GradientEngine::serve`] or [`GradientEngine::run_batch`] has been
    /// called (exposes session-pool statistics).
    pub fn batch_driver(&self) -> Option<&BatchDriver> {
        self.server.as_ref().map(|s| s.driver.batch_driver())
    }

    /// Cap the fan-out of [`GradientEngine::run_batch`] and served requests
    /// at `workers` concurrent items (0 = the worker pool's full width).
    /// Takes effect from the next dispatch, including on an already-built
    /// server.
    pub fn set_batch_workers(&mut self, workers: usize) {
        self.serve_options.workers = workers;
        if let Some(server) = &self.server {
            server.driver.batch_driver().set_workers(workers);
        }
    }

    /// Start (or return) the engine's dynamic-admission gradient server: a
    /// cloneable handle through which requests are submitted individually
    /// — [`GradientServer::submit`] /
    /// [`GradientServer::submit_with_deadline`] — and coalesced into
    /// batches over the *same* cached gradient program the blocking
    /// [`GradientEngine::run`] uses.  Served results are bit-identical to
    /// `run` with the same inputs.
    ///
    /// The server (its admission queue, dispatcher and session pool)
    /// persists on the engine; repeated calls return handles to the same
    /// instance.  Clones can be moved to other threads and submit
    /// concurrently.
    pub fn serve(&mut self) -> GradientServer {
        if self.server.is_none() {
            let serve = ServeDriver::over(self.build_batch_driver(), self.serve_options.clone());
            self.server = Some(GradientServer {
                driver: Arc::new(serve),
                meta: Arc::new(self.build_serve_meta()),
            });
        }
        self.server.clone().expect("server was just built")
    }

    /// A fresh [`BatchDriver`] over the cached gradient program, carrying
    /// the plan's recomputation free hints — the execution substrate shared
    /// by [`GradientEngine::serve`] and [`GradientEngine::register_with`].
    fn build_batch_driver(&self) -> BatchDriver {
        let mut driver = BatchDriver::new(self.gradient.program().clone());
        driver.set_free_hints(&self.plan.free_hints);
        driver
    }

    /// The name-resolution metadata served handles need to turn fetched
    /// arrays back into [`GradientResult`]s.
    fn build_serve_meta(&self) -> GradientServeMeta {
        let fetch: Vec<String> = std::iter::once(self.plan.output.clone())
            .chain(self.plan.inputs.iter().filter_map(|input| {
                self.plan
                    .gradients
                    .get(input)
                    .filter(|g| self.plan.sdfg.arrays.contains_key(*g))
                    .cloned()
            }))
            .collect();
        GradientServeMeta {
            transient: self
                .plan
                .sdfg
                .arrays
                .iter()
                .map(|(name, desc)| (name.clone(), desc.transient))
                .collect(),
            output: self.plan.output.clone(),
            gradients: self
                .plan
                .inputs
                .iter()
                .filter_map(|input| {
                    self.plan
                        .gradients
                        .get(input)
                        .map(|g| (input.clone(), g.clone()))
                })
                .collect(),
            fetch,
        }
    }

    /// Register this engine's gradient program as tenant `tenant` on a
    /// shared multi-tenant [`Gateway`], returning a cloneable
    /// [`GatewayGradientClient`] for submitting gradient requests through
    /// it.
    ///
    /// Unlike the engine-private [`GradientEngine::serve`] server, the
    /// gateway is shared across engines/programs and adds bounded
    /// admission, weighted fair scheduling, retries, circuit breaking and
    /// graceful reload (see [`dace_runtime::gateway`]).  The registered
    /// driver carries the plan's recomputation free hints, so served
    /// results stay bit-identical to [`GradientEngine::run`].
    pub fn register_with(
        &self,
        gateway: &Arc<Gateway>,
        tenant: &str,
        config: TenantConfig,
    ) -> Result<GatewayGradientClient, EngineError> {
        gateway.register_driver(tenant, self.build_batch_driver(), config)?;
        Ok(GatewayGradientClient {
            gateway: Arc::clone(gateway),
            tenant: tenant.to_string(),
            meta: Arc::new(self.build_serve_meta()),
        })
    }

    /// Hot-swap tenant `tenant`'s compiled plan on a shared [`Gateway`]
    /// with a fresh driver built from this engine (see
    /// [`Gateway::reload`]): the call blocks until requests in flight on
    /// the old plan have drained, while queued and new admissions land on
    /// the reloaded one.  Existing [`GatewayGradientClient`]s keep working
    /// across the swap as long as the program's array names are unchanged.
    pub fn reload_into(&self, gateway: &Gateway, tenant: &str) -> Result<(), EngineError> {
        gateway.reload_driver(tenant, self.build_batch_driver())?;
        Ok(())
    }

    /// [`GradientEngine::serve`] with explicit admission-queue options.
    /// Rebuilds the server if one already exists (outstanding handles of
    /// the old server stay valid until they resolve).
    pub fn serve_with_options(&mut self, options: ServeOptions) -> GradientServer {
        self.serve_options = options;
        self.server = None;
        self.serve()
    }

    /// Run only the forward SDFG and return the scalar value of the
    /// dependent output, using the engine's cached forward-only program
    /// (compiled on first call).
    pub fn run_forward(&mut self, inputs: &HashMap<String, Tensor>) -> Result<f64, EngineError> {
        self.run_forward_with(inputs, None)
    }

    fn run_forward_with(
        &mut self,
        inputs: &HashMap<String, Tensor>,
        override_binding: Option<(&str, &Tensor)>,
    ) -> Result<f64, EngineError> {
        if self.forward.is_none() {
            self.forward = Some(compile(&self.forward_sdfg, &self.symbols)?.session());
        }
        let session = self.forward.as_mut().expect("just compiled");
        bind_inputs(&self.forward_sdfg, session, inputs, override_binding)?;
        session.run()?;
        read_scalar_output(session, &self.plan.output)
    }

    /// Central finite-difference gradient of the output w.r.t. `input`,
    /// evaluated through the engine's cached forward program: the whole
    /// sweep (2 × len forward executions) performs at most one lowering.
    pub fn finite_difference(
        &mut self,
        input: &str,
        inputs: &HashMap<String, Tensor>,
        epsilon: f64,
    ) -> Result<Tensor, EngineError> {
        let base = inputs
            .get(input)
            .cloned()
            .ok_or_else(|| EngineError::UnknownInput(input.to_string()))?;
        central_difference(&base, epsilon, |perturbed| {
            self.run_forward_with(inputs, Some((input, perturbed)))
        })
    }
}

/// Name-resolution metadata shared by every [`GradientHandle`] of one
/// server: which program arrays are transient (for submit-time input
/// validation), the dependent output, and the input→gradient-array mapping
/// used to assemble [`GradientResult`]s from fetched tensors.
#[derive(Debug)]
struct GradientServeMeta {
    transient: HashMap<String, bool>,
    output: String,
    gradients: Vec<(String, String)>,
    fetch: Vec<String>,
}

/// Cloneable handle to a [`GradientEngine`]'s dynamic-admission server
/// (obtained from [`GradientEngine::serve`]).
///
/// Requests are submitted individually and return a [`GradientHandle`]
/// immediately; the serving layer ([`dace_runtime::ServeDriver`]) coalesces
/// them into batches over the engine's single cached gradient program.
/// Clones share the same admission queue, dispatcher and session pool, so
/// any number of threads can submit concurrently.
#[derive(Clone)]
pub struct GradientServer {
    driver: Arc<ServeDriver>,
    meta: Arc<GradientServeMeta>,
}

impl std::fmt::Debug for GradientServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GradientServer")
            .field("driver", &*self.driver)
            .finish()
    }
}

impl GradientServer {
    /// Submit one gradient request.  Input names are validated immediately
    /// (exactly like [`GradientEngine::run`]: unknown names are
    /// [`EngineError::UnknownInput`], transients are skipped); execution
    /// happens asynchronously once the admission queue dispatches the
    /// request.
    pub fn submit(&self, inputs: &HashMap<String, Tensor>) -> Result<GradientHandle, EngineError> {
        self.submit_inner(inputs, None)
    }

    /// [`GradientServer::submit`] with a latency budget: a request still
    /// queued `deadline` after submission is rejected with
    /// [`dace_runtime::ServeError::DeadlineExceeded`] (surfaced as
    /// [`EngineError::Serve`] by [`GradientHandle::wait`]) without ever
    /// occupying a worker.
    pub fn submit_with_deadline(
        &self,
        inputs: &HashMap<String, Tensor>,
        deadline: Duration,
    ) -> Result<GradientHandle, EngineError> {
        self.submit_inner(inputs, Some(deadline))
    }

    fn submit_inner(
        &self,
        inputs: &HashMap<String, Tensor>,
        deadline: Option<Duration>,
    ) -> Result<GradientHandle, EngineError> {
        // Same validation surface as `bind_inputs`, performed synchronously
        // so typos fail at the submit call, not inside the dispatcher.
        let mut bound = HashMap::with_capacity(inputs.len());
        for (name, tensor) in inputs {
            match self.meta.transient.get(name) {
                None => return Err(EngineError::UnknownInput(name.clone())),
                Some(true) => {} // recomputed by the program itself
                Some(false) => {
                    bound.insert(name.clone(), tensor.clone());
                }
            }
        }
        let fetch: Vec<&str> = self.meta.fetch.iter().map(String::as_str).collect();
        let inner = match deadline {
            Some(d) => self.driver.submit_with_deadline(bound, &fetch, d),
            None => self.driver.submit(bound, &fetch),
        };
        Ok(GradientHandle {
            inner,
            meta: Arc::clone(&self.meta),
        })
    }

    /// Queue/latency/counter snapshot of the serving layer.
    pub fn stats(&self) -> ServeStats {
        self.driver.stats()
    }

    /// The underlying serving driver (admission-queue options, warm-up,
    /// session-pool access).
    pub fn serve_driver(&self) -> &ServeDriver {
        &self.driver
    }
}

/// A completed served gradient request: the [`GradientResult`] plus the
/// serving-layer observability a blocking [`GradientEngine::run`] cannot
/// provide.
#[derive(Clone, Debug)]
pub struct ServedGradient {
    /// The gradient result, identical to what [`GradientEngine::run`]
    /// returns for the same inputs.
    pub result: GradientResult,
    /// Submit-to-completion latency (queueing included).
    pub latency: Duration,
    /// How many requests the dispatch that served this one coalesced.
    pub batched_with: usize,
}

/// Handle to one submitted gradient request (see [`GradientServer`]).
#[derive(Debug)]
pub struct GradientHandle {
    inner: RequestHandle,
    meta: Arc<GradientServeMeta>,
}

impl GradientHandle {
    /// Monotonic id of this request (unique per server).
    pub fn id(&self) -> u64 {
        self.inner.id()
    }

    /// Whether a result (or rejection) is available.
    pub fn is_done(&self) -> bool {
        self.inner.is_done()
    }

    /// Block until the request completes and take its result.
    ///
    /// Runtime failures surface as [`EngineError::Runtime`]; serving-layer
    /// rejections (deadline expiry, cancellation, shutdown, panic) as
    /// [`EngineError::Serve`].
    pub fn wait(self) -> Result<ServedGradient, EngineError> {
        let meta = Arc::clone(&self.meta);
        match self.inner.wait() {
            Ok(response) => gradient_result_from_response(&meta, response),
            Err(e) => Err(engine_error_from_serve(e)),
        }
    }

    /// Non-blocking poll: `Some(result)` once the request completed
    /// (repeatable — the stored result is cloned), `None` while it is
    /// queued or running.
    pub fn try_wait(&self) -> Option<Result<ServedGradient, EngineError>> {
        self.inner.try_wait().map(|polled| match polled {
            Ok(response) => gradient_result_from_response(&self.meta, response),
            Err(e) => Err(engine_error_from_serve(e)),
        })
    }

    /// Best-effort cancellation: succeeds only while the request is still
    /// queued (see [`dace_runtime::RequestHandle::cancel`]).
    pub fn cancel(&self) -> bool {
        self.inner.cancel()
    }
}

/// Cloneable client for one tenant of a shared multi-tenant
/// [`Gateway`] (obtained from [`GradientEngine::register_with`]).
///
/// The gateway equivalent of [`GradientServer`]: submissions validate
/// input names synchronously, execution is asynchronous, and handles
/// deliver [`ServedGradient`]s bit-identical to [`GradientEngine::run`].
/// On top, the gateway's robustness semantics apply — a submission may
/// resolve with [`dace_runtime::ServeError::Overloaded`] or
/// [`dace_runtime::ServeError::Degraded`] (as [`EngineError::Serve`]), and
/// idempotent requests are retried across injected or real panics.
#[derive(Clone)]
pub struct GatewayGradientClient {
    gateway: Arc<Gateway>,
    tenant: String,
    meta: Arc<GradientServeMeta>,
}

impl std::fmt::Debug for GatewayGradientClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GatewayGradientClient")
            .field("tenant", &self.tenant)
            .finish()
    }
}

impl GatewayGradientClient {
    /// The tenant name this client submits to.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The shared gateway behind this client.
    pub fn gateway(&self) -> &Arc<Gateway> {
        &self.gateway
    }

    /// Submit one gradient request with default [`SubmitOptions`]
    /// (no deadline, idempotent — a pure gradient evaluation is safe to
    /// retry).
    pub fn submit(
        &self,
        inputs: &HashMap<String, Tensor>,
    ) -> Result<GatewayGradientHandle, EngineError> {
        self.submit_with(inputs, SubmitOptions::default())
    }

    /// [`GatewayGradientClient::submit`] with an explicit deadline /
    /// idempotence policy.  Input names are validated immediately, exactly
    /// like [`GradientServer::submit`].
    pub fn submit_with(
        &self,
        inputs: &HashMap<String, Tensor>,
        opts: SubmitOptions,
    ) -> Result<GatewayGradientHandle, EngineError> {
        let mut bound = HashMap::with_capacity(inputs.len());
        for (name, tensor) in inputs {
            match self.meta.transient.get(name) {
                None => return Err(EngineError::UnknownInput(name.clone())),
                Some(true) => {} // recomputed by the program itself
                Some(false) => {
                    bound.insert(name.clone(), tensor.clone());
                }
            }
        }
        let fetch: Vec<&str> = self.meta.fetch.iter().map(String::as_str).collect();
        let inner = self
            .gateway
            .submit_with(&self.tenant, bound, &fetch, opts)?;
        Ok(GatewayGradientHandle {
            inner,
            meta: Arc::clone(&self.meta),
        })
    }

    /// This tenant's slice of the gateway's coherent stats snapshot.
    pub fn stats(&self) -> Option<TenantStats> {
        self.gateway.stats().tenants.remove(&self.tenant)
    }
}

/// Handle to one gradient request submitted through a gateway (see
/// [`GatewayGradientClient`]).  Mirrors [`GradientHandle`], plus a bounded
/// [`GatewayGradientHandle::wait_timeout`].
#[derive(Debug)]
pub struct GatewayGradientHandle {
    inner: GatewayHandle,
    meta: Arc<GradientServeMeta>,
}

impl GatewayGradientHandle {
    /// Monotonic id of this request (unique per gateway).
    pub fn id(&self) -> u64 {
        self.inner.id()
    }

    /// Whether a result (or rejection) is available.
    pub fn is_done(&self) -> bool {
        self.inner.is_done()
    }

    /// Block until the request completes and take its result.  Error
    /// mapping matches [`GradientHandle::wait`].
    pub fn wait(self) -> Result<ServedGradient, EngineError> {
        let meta = Arc::clone(&self.meta);
        match self.inner.wait() {
            Ok(response) => gradient_result_from_response(&meta, response),
            Err(e) => Err(engine_error_from_serve(e)),
        }
    }

    /// Non-blocking poll: `Some(result)` once completed (repeatable),
    /// `None` while pending.
    pub fn try_wait(&self) -> Option<Result<ServedGradient, EngineError>> {
        self.inner.try_wait().map(|polled| match polled {
            Ok(response) => gradient_result_from_response(&self.meta, response),
            Err(e) => Err(engine_error_from_serve(e)),
        })
    }

    /// Bounded blocking wait (see
    /// [`dace_runtime::GatewayHandle::wait_timeout`]): `None` on timeout
    /// with the handle fully usable, `Some(result)` once completed.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<ServedGradient, EngineError>> {
        self.inner.wait_timeout(timeout).map(|polled| match polled {
            Ok(response) => gradient_result_from_response(&self.meta, response),
            Err(e) => Err(engine_error_from_serve(e)),
        })
    }

    /// Best-effort cancellation: succeeds only while queued — including a
    /// retry awaiting its backoff.
    pub fn cancel(&self) -> bool {
        self.inner.cancel()
    }
}

fn engine_error_from_serve(e: ServeError) -> EngineError {
    match e {
        ServeError::Execution(e) => EngineError::Runtime(e),
        other => EngineError::Serve(other),
    }
}

/// Assemble a [`ServedGradient`] from the fetched arrays of a served
/// request, applying the same output-scalar validation as
/// [`GradientEngine::run`].
fn gradient_result_from_response(
    meta: &GradientServeMeta,
    response: ServeResponse,
) -> Result<ServedGradient, EngineError> {
    let ServeResponse {
        mut outputs,
        report,
        latency,
        batched_with,
    } = response;
    let out = outputs
        .get(&meta.output)
        .ok_or_else(|| EngineError::MissingOutput(meta.output.clone()))?;
    if out.len() != 1 {
        return Err(EngineError::NonScalarOutput {
            name: meta.output.clone(),
            shape: out.shape().to_vec(),
        });
    }
    let output_value = out.data()[0];
    let mut gradients = BTreeMap::new();
    for (input, gname) in &meta.gradients {
        if let Some(g) = outputs.remove(gname) {
            gradients.insert(input.clone(), g);
        }
    }
    Ok(ServedGradient {
        result: GradientResult {
            gradients,
            output_value,
            report,
        },
        latency,
        batched_with,
    })
}

/// Bind `inputs` into a session, validating names against the SDFG's
/// containers: unknown names are typed errors, transients are skipped (the
/// program computes them itself).  `override_binding` substitutes one
/// tensor by name without cloning the whole input map (the FD hot path —
/// every tensor must still be rebound per run because the program may
/// mutate its inputs in place).
fn bind_inputs(
    sdfg: &Sdfg,
    session: &mut Session,
    inputs: &HashMap<String, Tensor>,
    override_binding: Option<(&str, &Tensor)>,
) -> Result<(), EngineError> {
    session.clear_bindings();
    for (name, tensor) in inputs {
        let tensor = match override_binding {
            Some((oname, otensor)) if oname == name => otensor,
            _ => tensor,
        };
        match sdfg.arrays.get(name) {
            None => return Err(EngineError::UnknownInput(name.clone())),
            Some(desc) if desc.transient => {}
            Some(_) => session.set_input(name, tensor.clone())?,
        }
    }
    Ok(())
}

/// Read the scalar value of the dependent output from a finished session.
fn read_scalar_output(session: &Session, name: &str) -> Result<f64, EngineError> {
    let t = session
        .array(name)
        .ok_or_else(|| EngineError::MissingOutput(name.to_string()))?;
    if t.len() != 1 {
        return Err(EngineError::NonScalarOutput {
            name: name.to_string(),
            shape: t.shape().to_vec(),
        });
    }
    Ok(t.data()[0])
}

/// Run only the forward SDFG and return the scalar value of `output`.
///
/// Compiles through the process-wide plan cache, so repeated calls with the
/// same SDFG and symbols lower it once; callers that loop should prefer
/// [`GradientEngine::run_forward`], which also reuses its tensor slab.
pub fn run_forward_scalar(
    forward: &Sdfg,
    output: &str,
    symbols: &HashMap<String, i64>,
    inputs: &HashMap<String, Tensor>,
) -> Result<f64, EngineError> {
    let mut session = compile(forward, symbols)?.session();
    bind_inputs(forward, &mut session, inputs, None)?;
    session.run()?;
    read_scalar_output(&session, output)
}

/// Central finite-difference gradient of `output` w.r.t. `input`, used to
/// validate the AD engine on small problem sizes.
///
/// The forward SDFG is compiled **once** (through the plan cache) and a
/// single session's tensor slab is reused for all `2 × len` evaluations; the
/// old implementation re-lowered the SDFG for every perturbation.
pub fn finite_difference_gradient(
    forward: &Sdfg,
    output: &str,
    input: &str,
    symbols: &HashMap<String, i64>,
    inputs: &HashMap<String, Tensor>,
    epsilon: f64,
) -> Result<Tensor, EngineError> {
    let base = inputs
        .get(input)
        .cloned()
        .ok_or_else(|| EngineError::UnknownInput(input.to_string()))?;
    let mut session = compile(forward, symbols)?.session();
    central_difference(&base, epsilon, |perturbed| {
        bind_inputs(forward, &mut session, inputs, Some((input, perturbed)))?;
        session.run()?;
        read_scalar_output(&session, output)
    })
}

/// Central-difference sweep shared by [`GradientEngine::finite_difference`]
/// and [`finite_difference_gradient`]: perturb one element at a time in a
/// single reused tensor and evaluate the forward program through `eval`.
fn central_difference<F>(base: &Tensor, epsilon: f64, mut eval: F) -> Result<Tensor, EngineError>
where
    F: FnMut(&Tensor) -> Result<f64, EngineError>,
{
    let mut grad = Tensor::zeros(base.shape());
    let mut perturbed = base.clone();
    for flat in 0..base.len() {
        perturbed.data_mut()[flat] = base.data()[flat] + epsilon;
        let fp = eval(&perturbed)?;
        perturbed.data_mut()[flat] = base.data()[flat] - epsilon;
        let fm = eval(&perturbed)?;
        perturbed.data_mut()[flat] = base.data()[flat];
        grad.data_mut()[flat] = (fp - fm) / (2.0 * epsilon);
    }
    Ok(grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CheckpointStrategy;
    use dace_frontend::{elem, ArrayExpr, ProgramBuilder};
    use dace_sdfg::SymExpr;
    use dace_tensor::random::uniform;

    fn symbols(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    fn check_against_fd(
        fwd: &Sdfg,
        output: &str,
        wrt: &[&str],
        symbols: &HashMap<String, i64>,
        inputs: &HashMap<String, Tensor>,
        tol: f64,
    ) {
        let mut engine =
            GradientEngine::new(fwd, output, wrt, symbols, &AdOptions::default()).unwrap();
        let result = engine.run(inputs).unwrap();
        for input in wrt {
            let ad = &result.gradients[*input];
            let fd = finite_difference_gradient(fwd, output, input, symbols, inputs, 1e-5).unwrap();
            for (a, b) in ad.data().iter().zip(fd.data().iter()) {
                assert!(
                    (a - b).abs() <= tol * (1.0 + b.abs()),
                    "gradient mismatch for {input}: ad={a} fd={b}"
                );
            }
        }
    }

    #[test]
    fn gradient_of_linear_chain() {
        // OUT = sum(3 * X)  =>  dOUT/dX = 3
        let mut b = ProgramBuilder::new("lin");
        let n = b.symbol("N");
        b.add_input("X", vec![n.clone()]).unwrap();
        b.add_transient("Y", vec![n.clone()]).unwrap();
        b.add_scalar("OUT").unwrap();
        b.assign("Y", ArrayExpr::a("X").mul(ArrayExpr::s(3.0)));
        b.sum_into("OUT", "Y", false);
        let fwd = b.build().unwrap();
        let mut engine = GradientEngine::new(
            &fwd,
            "OUT",
            &["X"],
            &symbols(&[("N", 5)]),
            &AdOptions::default(),
        )
        .unwrap();
        let mut inputs = HashMap::new();
        inputs.insert("X".to_string(), uniform(&[5], 1));
        let res = engine.run(&inputs).unwrap();
        for &g in res.gradients["X"].data() {
            assert!((g - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn gradient_of_nonlinear_chain_matches_fd() {
        // OUT = sum(sin(X * Y) + exp(X))
        let mut b = ProgramBuilder::new("nl");
        let n = b.symbol("N");
        b.add_input("X", vec![n.clone()]).unwrap();
        b.add_input("Y", vec![n.clone()]).unwrap();
        b.add_transient("T", vec![n.clone()]).unwrap();
        b.add_transient("U", vec![n.clone()]).unwrap();
        b.add_scalar("OUT").unwrap();
        b.assign("T", ArrayExpr::a("X").mul(ArrayExpr::a("Y")).sin());
        b.assign("U", ArrayExpr::a("X").exp().add(ArrayExpr::a("T")));
        b.sum_into("OUT", "U", false);
        let fwd = b.build().unwrap();
        let syms = symbols(&[("N", 6)]);
        let mut inputs = HashMap::new();
        inputs.insert("X".to_string(), uniform(&[6], 2));
        inputs.insert("Y".to_string(), uniform(&[6], 3));
        check_against_fd(&fwd, "OUT", &["X", "Y"], &syms, &inputs, 1e-4);
    }

    #[test]
    fn gradient_through_matmul() {
        // OUT = sum(A @ B)
        let mut b = ProgramBuilder::new("mm");
        let n = b.symbol("N");
        b.add_input("A", vec![n.clone(), n.clone()]).unwrap();
        b.add_input("B", vec![n.clone(), n.clone()]).unwrap();
        b.add_transient("C", vec![n.clone(), n.clone()]).unwrap();
        b.add_scalar("OUT").unwrap();
        b.matmul("C", "A", "B");
        b.sum_into("OUT", "C", false);
        let fwd = b.build().unwrap();
        let syms = symbols(&[("N", 4)]);
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), uniform(&[4, 4], 4));
        inputs.insert("B".to_string(), uniform(&[4, 4], 5));
        check_against_fd(&fwd, "OUT", &["A", "B"], &syms, &inputs, 1e-4);
    }

    #[test]
    fn gradient_through_sequential_loop_with_overwrites() {
        // for i in 1..N: A[i] = A[i] * A[i-1]; OUT = sum(A)
        // Non-linear in-place updates exercise tapes and gradient clearing.
        let mut b = ProgramBuilder::new("loopchain");
        let n = b.symbol("N");
        b.add_input("A", vec![n.clone()]).unwrap();
        b.add_scalar("OUT").unwrap();
        let i = SymExpr::sym("i");
        b.for_range("i", 1, n.clone(), |b| {
            b.assign_element(
                "A",
                vec![i.clone()],
                elem("A", vec![i.clone()]).mul(elem("A", vec![i.sub(&SymExpr::int(1))])),
            );
        });
        b.sum_into("OUT", "A", false);
        let fwd = b.build().unwrap();
        let syms = symbols(&[("N", 5)]);
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), uniform(&[5], 7).add_scalar(0.5));
        check_against_fd(&fwd, "OUT", &["A"], &syms, &inputs, 1e-4);
    }

    #[test]
    fn gradient_through_linear_stencil_loop() {
        // Seidel-style in-place linear stencil.
        let mut b = ProgramBuilder::new("stencil1d");
        let n = b.symbol("N");
        let t = b.symbol("T");
        b.add_input("A", vec![n.clone()]).unwrap();
        b.add_scalar("OUT").unwrap();
        let i = SymExpr::sym("i");
        b.for_range("t", 0, t.clone(), |b| {
            b.for_range("i", 1, n.sub(&SymExpr::int(1)), |b| {
                b.assign_element(
                    "A",
                    vec![i.clone()],
                    elem("A", vec![i.sub(&SymExpr::int(1))])
                        .add(elem("A", vec![i.clone()]))
                        .add(elem("A", vec![i.add_int(1)]))
                        .div(lit_3()),
                );
            });
        });
        b.sum_into("OUT", "A", false);
        let fwd = b.build().unwrap();
        let syms = symbols(&[("N", 6), ("T", 2)]);
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), uniform(&[6], 11));
        check_against_fd(&fwd, "OUT", &["A"], &syms, &inputs, 1e-4);
    }

    fn lit_3() -> dace_frontend::ElemExpr {
        dace_frontend::lit(3.0)
    }

    #[test]
    fn gradient_with_branches_matches_fd() {
        use dace_sdfg::{CmpOp, CondExpr, CondOperand};
        // if P[0] > 0: Y = X*X else: Y = 2*X ; OUT = sum(Y)
        let build = || {
            let mut b = ProgramBuilder::new("branchy");
            let n = b.symbol("N");
            b.add_input("X", vec![n.clone()]).unwrap();
            b.add_input("P", vec![SymExpr::int(1)]).unwrap();
            b.add_transient("Y", vec![n.clone()]).unwrap();
            b.add_scalar("OUT").unwrap();
            b.branch(
                CondExpr::Cmp {
                    lhs: CondOperand::Element {
                        array: "P".into(),
                        index: vec![SymExpr::int(0)],
                    },
                    op: CmpOp::Gt,
                    rhs: CondOperand::Const(0.0),
                },
                |b| b.assign("Y", ArrayExpr::a("X").mul(ArrayExpr::a("X"))),
                Some(Box::new(|b: &mut ProgramBuilder| {
                    b.assign("Y", ArrayExpr::a("X").mul(ArrayExpr::s(2.0)))
                })),
            );
            b.sum_into("OUT", "Y", false);
            b.build().unwrap()
        };
        let fwd = build();
        let syms = symbols(&[("N", 4)]);
        for p in [1.0, -1.0] {
            let mut inputs = HashMap::new();
            inputs.insert("X".to_string(), uniform(&[4], 13));
            inputs.insert("P".to_string(), Tensor::from_vec(vec![p], &[1]).unwrap());
            check_against_fd(&fwd, "OUT", &["X"], &syms, &inputs, 1e-4);
        }
    }

    #[test]
    fn recompute_strategy_preserves_gradients_and_lowers_memory() {
        let fwd = crate::checkpoint::tests::listing1();
        let syms = symbols(&[("N", 16)]);
        let mut inputs = HashMap::new();
        inputs.insert("C".to_string(), uniform(&[16, 16], 21));
        inputs.insert("D".to_string(), uniform(&[16, 16], 22));

        let mut store =
            GradientEngine::new(&fwd, "OUT", &["C", "D"], &syms, &AdOptions::default()).unwrap();
        let store_res = store.run(&inputs).unwrap();

        let mut recompute = GradientEngine::new(
            &fwd,
            "OUT",
            &["C", "D"],
            &syms,
            &AdOptions::builder()
                .strategy(CheckpointStrategy::RecomputeAll)
                .build(),
        )
        .unwrap();
        let rec_res = recompute.run(&inputs).unwrap();

        for k in ["C", "D"] {
            assert!(
                dace_tensor::allclose(&store_res.gradients[k], &rec_res.gradients[k], 1e-8, 1e-10),
                "gradients must not change with the checkpointing strategy ({k})"
            );
        }
        assert!(
            rec_res.report.peak_bytes < store_res.report.peak_bytes,
            "recompute-all should lower the measured peak memory ({} vs {})",
            rec_res.report.peak_bytes,
            store_res.report.peak_bytes
        );
    }

    #[test]
    fn unknown_input_is_a_typed_error() {
        let mut b = ProgramBuilder::new("typo");
        let n = b.symbol("N");
        b.add_input("X", vec![n.clone()]).unwrap();
        b.add_transient("Y", vec![n.clone()]).unwrap();
        b.add_scalar("OUT").unwrap();
        b.assign("Y", ArrayExpr::a("X").mul(ArrayExpr::s(2.0)));
        b.sum_into("OUT", "Y", false);
        let fwd = b.build().unwrap();
        let syms = symbols(&[("N", 4)]);
        let mut engine =
            GradientEngine::new(&fwd, "OUT", &["X"], &syms, &AdOptions::default()).unwrap();
        let mut inputs = HashMap::new();
        inputs.insert("X".to_string(), uniform(&[4], 1));
        inputs.insert("Xtypo".to_string(), uniform(&[4], 1));
        match engine.run(&inputs) {
            Err(EngineError::UnknownInput(name)) => assert_eq!(name, "Xtypo"),
            other => panic!("expected UnknownInput, got {other:?}"),
        }
        // The free helpers validate the same way.
        match run_forward_scalar(&fwd, "OUT", &syms, &inputs) {
            Err(EngineError::UnknownInput(name)) => assert_eq!(name, "Xtypo"),
            other => panic!("expected UnknownInput, got {other:?}"),
        }
        inputs.remove("Xtypo");
        assert!(engine.run(&inputs).is_ok());
    }

    #[test]
    fn missing_and_nonscalar_outputs_are_typed_errors() {
        let mut b = ProgramBuilder::new("vecout");
        let n = b.symbol("N");
        b.add_input("X", vec![n.clone()]).unwrap();
        b.add_input("Y", vec![n.clone()]).unwrap();
        b.assign("Y", ArrayExpr::a("X").mul(ArrayExpr::s(2.0)));
        let fwd = b.build().unwrap();
        let syms = symbols(&[("N", 4)]);
        let mut inputs = HashMap::new();
        inputs.insert("X".to_string(), uniform(&[4], 1));
        // Y exists but is a length-4 vector, not a scalar output.
        match run_forward_scalar(&fwd, "Y", &syms, &inputs) {
            Err(EngineError::NonScalarOutput { name, shape }) => {
                assert_eq!(name, "Y");
                assert_eq!(shape, vec![4]);
            }
            other => panic!("expected NonScalarOutput, got {other:?}"),
        }
        // NOPE is not an array at all.
        match run_forward_scalar(&fwd, "NOPE", &syms, &inputs) {
            Err(EngineError::MissingOutput(name)) => assert_eq!(name, "NOPE"),
            other => panic!("expected MissingOutput, got {other:?}"),
        }
    }

    #[test]
    fn engine_fd_uses_one_forward_lowering() {
        let mut b = ProgramBuilder::new("fdcached");
        let n = b.symbol("N");
        b.add_input("X", vec![n.clone()]).unwrap();
        b.add_transient("T", vec![n.clone()]).unwrap();
        b.add_scalar("OUT").unwrap();
        b.assign("T", ArrayExpr::a("X").sin());
        b.sum_into("OUT", "T", false);
        let fwd = b.build().unwrap();
        let syms = symbols(&[("N", 6)]);
        let mut inputs = HashMap::new();
        inputs.insert("X".to_string(), uniform(&[6], 3));
        let mut engine =
            GradientEngine::new(&fwd, "OUT", &["X"], &syms, &AdOptions::default()).unwrap();
        assert!(engine.forward_program().is_none());
        let fd = engine.finite_difference("X", &inputs, 1e-6).unwrap();
        let ad = engine.run(&inputs).unwrap();
        assert!(dace_tensor::allclose(&ad.gradients["X"], &fd, 1e-4, 1e-7));
        // The 12 forward evaluations of the sweep share one lowered plan.
        let stats = engine.forward_program().unwrap().cache_stats();
        assert_eq!(stats.misses, 1, "FD sweep must lower the forward SDFG once");
    }
}
