//! The gradient engine: ties together backward generation, checkpointing and
//! execution, and provides finite-difference validation helpers.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use dace_runtime::{ExecutionReport, Executor, RuntimeError};
use dace_sdfg::Sdfg;
use dace_tensor::Tensor;

use crate::checkpoint::apply_strategy;
use crate::reverse::{generate_backward, AdError, BackwardPlan};
use crate::AdOptions;

/// Errors raised by the gradient engine.
#[derive(Clone, Debug)]
pub enum EngineError {
    /// Backward generation failed.
    Ad(AdError),
    /// Execution failed.
    Runtime(RuntimeError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Ad(e) => write!(f, "AD error: {e}"),
            EngineError::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<AdError> for EngineError {
    fn from(e: AdError) -> Self {
        EngineError::Ad(e)
    }
}

impl From<RuntimeError> for EngineError {
    fn from(e: RuntimeError) -> Self {
        EngineError::Runtime(e)
    }
}

/// Result of one gradient computation.
#[derive(Clone, Debug)]
pub struct GradientResult {
    /// Gradient tensors for the requested independent inputs.
    pub gradients: BTreeMap<String, Tensor>,
    /// Value of the dependent output after the forward pass.
    pub output_value: f64,
    /// Execution report of the combined gradient program (single memory
    /// timeline, as the paper measures it).
    pub report: ExecutionReport,
}

/// High-level driver: build the gradient SDFG once, run it many times.
pub struct GradientEngine {
    plan: BackwardPlan,
    symbols: HashMap<String, i64>,
}

impl GradientEngine {
    /// Build the gradient program for `output` w.r.t. `inputs` under the
    /// given symbol values and checkpointing options.
    pub fn new(
        forward: &Sdfg,
        output: &str,
        inputs: &[&str],
        symbols: &HashMap<String, i64>,
        options: &AdOptions,
    ) -> Result<Self, EngineError> {
        let mut plan = generate_backward(forward, output, inputs)?;
        let report = apply_strategy(&mut plan, &options.strategy, symbols)?;
        plan.ilp_report = Some(report);
        Ok(GradientEngine {
            plan,
            symbols: symbols.clone(),
        })
    }

    /// The generated plan (gradient SDFG plus metadata).
    pub fn plan(&self) -> &BackwardPlan {
        &self.plan
    }

    /// Run the gradient program on concrete inputs.
    pub fn run(&self, inputs: &HashMap<String, Tensor>) -> Result<GradientResult, EngineError> {
        let mut executor = Executor::new(&self.plan.sdfg, &self.symbols)?
            .with_free_hints(self.plan.free_hints.clone());
        for (name, tensor) in inputs {
            if let Some(desc) = self.plan.sdfg.arrays.get(name) {
                if !desc.transient {
                    executor.set_input(name, tensor.clone())?;
                }
            }
        }
        let report = executor.run()?;
        let arrays = executor.into_arrays();
        let output_value = arrays
            .get(&self.plan.output)
            .and_then(|t| t.data().first().copied())
            .unwrap_or(f64::NAN);
        let mut gradients = BTreeMap::new();
        for input in &self.plan.inputs {
            if let Some(gname) = self.plan.gradients.get(input) {
                if let Some(g) = arrays.get(gname) {
                    gradients.insert(input.clone(), g.clone());
                }
            }
        }
        Ok(GradientResult {
            gradients,
            output_value,
            report,
        })
    }
}

/// Run only the forward SDFG and return the scalar value of `output`.
pub fn run_forward_scalar(
    forward: &Sdfg,
    output: &str,
    symbols: &HashMap<String, i64>,
    inputs: &HashMap<String, Tensor>,
) -> Result<f64, EngineError> {
    let mut executor = Executor::new(forward, symbols)?;
    for (name, tensor) in inputs {
        if let Some(desc) = forward.arrays.get(name) {
            if !desc.transient {
                executor.set_input(name, tensor.clone())?;
            }
        }
    }
    executor.run()?;
    Ok(executor
        .array(output)
        .and_then(|t| t.data().first().copied())
        .unwrap_or(f64::NAN))
}

/// Central finite-difference gradient of `output` w.r.t. `input`, used to
/// validate the AD engine on small problem sizes.
pub fn finite_difference_gradient(
    forward: &Sdfg,
    output: &str,
    input: &str,
    symbols: &HashMap<String, i64>,
    inputs: &HashMap<String, Tensor>,
    epsilon: f64,
) -> Result<Tensor, EngineError> {
    let base = inputs
        .get(input)
        .cloned()
        .ok_or_else(|| EngineError::Ad(AdError::UnknownInput(input.to_string())))?;
    let mut grad = Tensor::zeros(base.shape());
    for flat in 0..base.len() {
        let mut plus = inputs.clone();
        let mut minus = inputs.clone();
        let mut tp = base.clone();
        tp.data_mut()[flat] += epsilon;
        plus.insert(input.to_string(), tp);
        let mut tm = base.clone();
        tm.data_mut()[flat] -= epsilon;
        minus.insert(input.to_string(), tm);
        let fp = run_forward_scalar(forward, output, symbols, &plus)?;
        let fm = run_forward_scalar(forward, output, symbols, &minus)?;
        grad.data_mut()[flat] = (fp - fm) / (2.0 * epsilon);
    }
    Ok(grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CheckpointStrategy;
    use dace_frontend::{elem, ArrayExpr, ProgramBuilder};
    use dace_sdfg::SymExpr;
    use dace_tensor::random::uniform;

    fn symbols(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    fn check_against_fd(
        fwd: &Sdfg,
        output: &str,
        wrt: &[&str],
        symbols: &HashMap<String, i64>,
        inputs: &HashMap<String, Tensor>,
        tol: f64,
    ) {
        let engine = GradientEngine::new(fwd, output, wrt, symbols, &AdOptions::default()).unwrap();
        let result = engine.run(inputs).unwrap();
        for input in wrt {
            let ad = &result.gradients[*input];
            let fd = finite_difference_gradient(fwd, output, input, symbols, inputs, 1e-5).unwrap();
            for (a, b) in ad.data().iter().zip(fd.data().iter()) {
                assert!(
                    (a - b).abs() <= tol * (1.0 + b.abs()),
                    "gradient mismatch for {input}: ad={a} fd={b}"
                );
            }
        }
    }

    #[test]
    fn gradient_of_linear_chain() {
        // OUT = sum(3 * X)  =>  dOUT/dX = 3
        let mut b = ProgramBuilder::new("lin");
        let n = b.symbol("N");
        b.add_input("X", vec![n.clone()]).unwrap();
        b.add_transient("Y", vec![n.clone()]).unwrap();
        b.add_scalar("OUT").unwrap();
        b.assign("Y", ArrayExpr::a("X").mul(ArrayExpr::s(3.0)));
        b.sum_into("OUT", "Y", false);
        let fwd = b.build().unwrap();
        let engine = GradientEngine::new(
            &fwd,
            "OUT",
            &["X"],
            &symbols(&[("N", 5)]),
            &AdOptions::default(),
        )
        .unwrap();
        let mut inputs = HashMap::new();
        inputs.insert("X".to_string(), uniform(&[5], 1));
        let res = engine.run(&inputs).unwrap();
        for &g in res.gradients["X"].data() {
            assert!((g - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn gradient_of_nonlinear_chain_matches_fd() {
        // OUT = sum(sin(X * Y) + exp(X))
        let mut b = ProgramBuilder::new("nl");
        let n = b.symbol("N");
        b.add_input("X", vec![n.clone()]).unwrap();
        b.add_input("Y", vec![n.clone()]).unwrap();
        b.add_transient("T", vec![n.clone()]).unwrap();
        b.add_transient("U", vec![n.clone()]).unwrap();
        b.add_scalar("OUT").unwrap();
        b.assign("T", ArrayExpr::a("X").mul(ArrayExpr::a("Y")).sin());
        b.assign("U", ArrayExpr::a("X").exp().add(ArrayExpr::a("T")));
        b.sum_into("OUT", "U", false);
        let fwd = b.build().unwrap();
        let syms = symbols(&[("N", 6)]);
        let mut inputs = HashMap::new();
        inputs.insert("X".to_string(), uniform(&[6], 2));
        inputs.insert("Y".to_string(), uniform(&[6], 3));
        check_against_fd(&fwd, "OUT", &["X", "Y"], &syms, &inputs, 1e-4);
    }

    #[test]
    fn gradient_through_matmul() {
        // OUT = sum(A @ B)
        let mut b = ProgramBuilder::new("mm");
        let n = b.symbol("N");
        b.add_input("A", vec![n.clone(), n.clone()]).unwrap();
        b.add_input("B", vec![n.clone(), n.clone()]).unwrap();
        b.add_transient("C", vec![n.clone(), n.clone()]).unwrap();
        b.add_scalar("OUT").unwrap();
        b.matmul("C", "A", "B");
        b.sum_into("OUT", "C", false);
        let fwd = b.build().unwrap();
        let syms = symbols(&[("N", 4)]);
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), uniform(&[4, 4], 4));
        inputs.insert("B".to_string(), uniform(&[4, 4], 5));
        check_against_fd(&fwd, "OUT", &["A", "B"], &syms, &inputs, 1e-4);
    }

    #[test]
    fn gradient_through_sequential_loop_with_overwrites() {
        // for i in 1..N: A[i] = A[i] * A[i-1]; OUT = sum(A)
        // Non-linear in-place updates exercise tapes and gradient clearing.
        let mut b = ProgramBuilder::new("loopchain");
        let n = b.symbol("N");
        b.add_input("A", vec![n.clone()]).unwrap();
        b.add_scalar("OUT").unwrap();
        let i = SymExpr::sym("i");
        b.for_range("i", 1, n.clone(), |b| {
            b.assign_element(
                "A",
                vec![i.clone()],
                elem("A", vec![i.clone()]).mul(elem("A", vec![i.sub(&SymExpr::int(1))])),
            );
        });
        b.sum_into("OUT", "A", false);
        let fwd = b.build().unwrap();
        let syms = symbols(&[("N", 5)]);
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), uniform(&[5], 7).add_scalar(0.5));
        check_against_fd(&fwd, "OUT", &["A"], &syms, &inputs, 1e-4);
    }

    #[test]
    fn gradient_through_linear_stencil_loop() {
        // Seidel-style in-place linear stencil.
        let mut b = ProgramBuilder::new("stencil1d");
        let n = b.symbol("N");
        let t = b.symbol("T");
        b.add_input("A", vec![n.clone()]).unwrap();
        b.add_scalar("OUT").unwrap();
        let i = SymExpr::sym("i");
        b.for_range("t", 0, t.clone(), |b| {
            b.for_range("i", 1, n.sub(&SymExpr::int(1)), |b| {
                b.assign_element(
                    "A",
                    vec![i.clone()],
                    elem("A", vec![i.sub(&SymExpr::int(1))])
                        .add(elem("A", vec![i.clone()]))
                        .add(elem("A", vec![i.add_int(1)]))
                        .div(lit_3()),
                );
            });
        });
        b.sum_into("OUT", "A", false);
        let fwd = b.build().unwrap();
        let syms = symbols(&[("N", 6), ("T", 2)]);
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), uniform(&[6], 11));
        check_against_fd(&fwd, "OUT", &["A"], &syms, &inputs, 1e-4);
    }

    fn lit_3() -> dace_frontend::ElemExpr {
        dace_frontend::lit(3.0)
    }

    #[test]
    fn gradient_with_branches_matches_fd() {
        use dace_sdfg::{CmpOp, CondExpr, CondOperand};
        // if P[0] > 0: Y = X*X else: Y = 2*X ; OUT = sum(Y)
        let build = || {
            let mut b = ProgramBuilder::new("branchy");
            let n = b.symbol("N");
            b.add_input("X", vec![n.clone()]).unwrap();
            b.add_input("P", vec![SymExpr::int(1)]).unwrap();
            b.add_transient("Y", vec![n.clone()]).unwrap();
            b.add_scalar("OUT").unwrap();
            b.branch(
                CondExpr::Cmp {
                    lhs: CondOperand::Element {
                        array: "P".into(),
                        index: vec![SymExpr::int(0)],
                    },
                    op: CmpOp::Gt,
                    rhs: CondOperand::Const(0.0),
                },
                |b| b.assign("Y", ArrayExpr::a("X").mul(ArrayExpr::a("X"))),
                Some(Box::new(|b: &mut ProgramBuilder| {
                    b.assign("Y", ArrayExpr::a("X").mul(ArrayExpr::s(2.0)))
                })),
            );
            b.sum_into("OUT", "Y", false);
            b.build().unwrap()
        };
        let fwd = build();
        let syms = symbols(&[("N", 4)]);
        for p in [1.0, -1.0] {
            let mut inputs = HashMap::new();
            inputs.insert("X".to_string(), uniform(&[4], 13));
            inputs.insert("P".to_string(), Tensor::from_vec(vec![p], &[1]).unwrap());
            check_against_fd(&fwd, "OUT", &["X"], &syms, &inputs, 1e-4);
        }
    }

    #[test]
    fn recompute_strategy_preserves_gradients_and_lowers_memory() {
        let fwd = crate::checkpoint::tests::listing1();
        let syms = symbols(&[("N", 16)]);
        let mut inputs = HashMap::new();
        inputs.insert("C".to_string(), uniform(&[16, 16], 21));
        inputs.insert("D".to_string(), uniform(&[16, 16], 22));

        let store =
            GradientEngine::new(&fwd, "OUT", &["C", "D"], &syms, &AdOptions::default()).unwrap();
        let store_res = store.run(&inputs).unwrap();

        let recompute = GradientEngine::new(
            &fwd,
            "OUT",
            &["C", "D"],
            &syms,
            &AdOptions {
                strategy: CheckpointStrategy::RecomputeAll,
            },
        )
        .unwrap();
        let rec_res = recompute.run(&inputs).unwrap();

        for k in ["C", "D"] {
            assert!(
                dace_tensor::allclose(&store_res.gradients[k], &rec_res.gradients[k], 1e-8, 1e-10),
                "gradients must not change with the checkpointing strategy ({k})"
            );
        }
        assert!(
            rec_res.report.peak_bytes < store_res.report.peak_bytes,
            "recompute-all should lower the measured peak memory ({} vs {})",
            rec_res.report.peak_bytes,
            store_res.report.peak_bytes
        );
    }
}
