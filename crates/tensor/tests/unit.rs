//! Unit tests for the tensor substrate: elementwise ops, linalg kernels, and
//! the `allclose` predicate's edge cases (NaN, shape mismatch, tolerance
//! semantics), which the gradient cross-validation suite leans on.

use dace_tensor::{allclose, allclose_default, Tensor, TensorError};

fn t(data: &[f64], shape: &[usize]) -> Tensor {
    Tensor::from_vec(data.to_vec(), shape).unwrap()
}

// --- allclose edge cases -------------------------------------------------

#[test]
fn allclose_rejects_nan_like_numpy() {
    // np.allclose(nan, nan) is False without equal_nan=True; a gradient
    // validation must never accept NaN == NaN.
    let a = t(&[1.0, f64::NAN], &[2]);
    assert!(!allclose_default(&a, &a));
    let b = t(&[1.0, 2.0], &[2]);
    assert!(!allclose_default(&a, &b));
    assert!(!allclose_default(&b, &a));
}

#[test]
fn allclose_rejects_shape_mismatch() {
    let a = Tensor::ones(&[2, 3]);
    let b = Tensor::ones(&[3, 2]);
    let c = Tensor::ones(&[6]);
    assert!(!allclose_default(&a, &b));
    assert!(!allclose_default(&a, &c), "same volume is not enough");
}

#[test]
fn allclose_rejects_infinities_of_different_sign() {
    let a = t(&[f64::INFINITY], &[1]);
    let b = t(&[f64::NEG_INFINITY], &[1]);
    assert!(allclose_default(&a, &a));
    assert!(!allclose_default(&a, &b));
}

#[test]
fn allclose_tolerance_is_relative_to_rhs() {
    // |x - y| <= atol + rtol*|y|: the predicate is asymmetric like NumPy's.
    let x = t(&[1000.1], &[1]);
    let y = t(&[1000.0], &[1]);
    assert!(allclose(&x, &y, 1.1e-4, 0.0));
    assert!(!allclose(&x, &y, 0.9e-4, 0.0));
    let zero = t(&[0.0], &[1]);
    let tiny = t(&[1e-9], &[1]);
    // Against an exact zero only atol can absorb the difference.
    assert!(allclose(&tiny, &zero, 1e-5, 1e-8));
    assert!(!allclose(&tiny, &zero, 1e-5, 0.0));
}

#[test]
fn allclose_accepts_empty_and_scalar() {
    assert!(allclose_default(&Tensor::zeros(&[0]), &Tensor::zeros(&[0])));
    assert!(allclose_default(&Tensor::scalar(3.5), &Tensor::scalar(3.5)));
}

// --- elementwise ops -----------------------------------------------------

#[test]
fn elementwise_ops_match_reference() {
    let a = t(&[1.0, -2.0, 3.0, 0.5], &[2, 2]);
    let b = t(&[2.0, 4.0, -1.0, 0.25], &[2, 2]);
    assert_eq!(a.add(&b).unwrap().data(), &[3.0, 2.0, 2.0, 0.75]);
    assert_eq!(a.sub(&b).unwrap().data(), &[-1.0, -6.0, 4.0, 0.25]);
    assert_eq!(a.mul(&b).unwrap().data(), &[2.0, -8.0, -3.0, 0.125]);
    assert_eq!(a.div(&b).unwrap().data(), &[0.5, -0.5, -3.0, 2.0]);
    assert_eq!(a.scale(2.0).data(), &[2.0, -4.0, 6.0, 1.0]);
    assert_eq!(a.add_scalar(1.0).data(), &[2.0, -1.0, 4.0, 1.5]);
}

#[test]
fn elementwise_shape_mismatch_is_an_error() {
    let a = Tensor::ones(&[2, 2]);
    let b = Tensor::ones(&[4]);
    match a.add(&b) {
        Err(TensorError::ShapeMismatch { op, lhs, rhs }) => {
            assert_eq!(op, "add");
            assert_eq!(lhs, vec![2, 2]);
            assert_eq!(rhs, vec![4]);
        }
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }
}

#[test]
fn in_place_ops_accumulate() {
    let mut acc = Tensor::zeros(&[3]);
    acc.add_assign(&t(&[1.0, 2.0, 3.0], &[3])).unwrap();
    acc.axpy(2.0, &t(&[1.0, 1.0, 1.0], &[3])).unwrap();
    assert_eq!(acc.data(), &[3.0, 4.0, 5.0]);
    acc.mul_assign(&t(&[2.0, 0.5, -1.0], &[3])).unwrap();
    assert_eq!(acc.data(), &[6.0, 2.0, -5.0]);
    assert!(acc.add_assign(&Tensor::ones(&[4])).is_err());
}

#[test]
fn map_applies_pointwise() {
    let a = t(&[0.0, 1.0, 4.0], &[3]);
    assert_eq!(a.map(|x| x.sqrt()).data(), &[0.0, 1.0, 2.0]);
}

// --- linalg --------------------------------------------------------------

#[test]
fn matmul_matches_manual_reference() {
    let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
    let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
    let c = a.matmul(&b).unwrap();
    assert_eq!(c.shape(), &[2, 2]);
    assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    // Inner-dimension mismatch must not silently truncate.
    assert!(a.matmul(&a).is_err());
}

#[test]
fn matmul_parallel_path_matches_sequential() {
    // 128x128 crosses the PAR_THRESHOLD fan-out; validate against the
    // O(n^3) reference evaluated per element.
    let n = 128;
    let a = dace_tensor::random::uniform(&[n, n], 1);
    let b = dace_tensor::random::uniform(&[n, n], 2);
    let c = a.matmul(&b).unwrap();
    for &(i, j) in &[
        (0, 0),
        (0, n - 1),
        (n / 2, n / 3),
        (n - 1, 0),
        (n - 1, n - 1),
    ] {
        let mut expect = 0.0;
        for k in 0..n {
            expect += a.at(&[i, k]).unwrap() * b.at(&[k, j]).unwrap();
        }
        let got = c.at(&[i, j]).unwrap();
        assert!(
            (got - expect).abs() <= 1e-9 * (1.0 + expect.abs()),
            "c[{i},{j}] = {got}, expected {expect}"
        );
    }
}

#[test]
fn matvec_dot_outer_transpose() {
    let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
    let v = t(&[1.0, -1.0], &[2]);
    assert_eq!(a.matvec(&v).unwrap().data(), &[-1.0, -1.0]);
    assert_eq!(v.dot(&v).unwrap(), 2.0);
    let o = v.outer(&t(&[2.0, 3.0], &[2])).unwrap();
    assert_eq!(o.shape(), &[2, 2]);
    assert_eq!(o.data(), &[2.0, 3.0, -2.0, -3.0]);
    let at = a.transpose().unwrap();
    assert_eq!(at.data(), &[1.0, 3.0, 2.0, 4.0]);
}

#[test]
fn gemm_is_alpha_ab_plus_beta_c() {
    let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
    let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
    let c = Tensor::ones(&[2, 2]);
    let out = a.gemm(&b, &c, 2.0, 3.0).unwrap();
    // 2*(A@B) + 3*C
    assert_eq!(out.data(), &[41.0, 47.0, 89.0, 103.0]);
}

// --- reductions ----------------------------------------------------------

#[test]
fn reductions_match_reference() {
    let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
    assert_eq!(a.sum(), 21.0);
    assert_eq!(a.mean(), 3.5);
    assert_eq!(a.max_value(), 6.0);
    assert_eq!(a.min_value(), 1.0);
    let rows = a.sum_axis(0).unwrap();
    assert_eq!(rows.data(), &[5.0, 7.0, 9.0]);
    let cols = a.sum_axis(1).unwrap();
    assert_eq!(cols.data(), &[6.0, 15.0]);
}
