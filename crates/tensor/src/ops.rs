//! Element-wise operations (binary, unary, scalar) on tensors.

use crate::error::{TensorError, TensorResult};
use crate::tensor::Tensor;

/// Binary element-wise operations supported by the substrate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    Max,
    Min,
}

impl BinaryOp {
    /// Lower-case operation name, used in error reporting.
    pub fn name(self) -> &'static str {
        match self {
            BinaryOp::Add => "add",
            BinaryOp::Sub => "sub",
            BinaryOp::Mul => "mul",
            BinaryOp::Div => "div",
            BinaryOp::Pow => "pow",
            BinaryOp::Max => "max",
            BinaryOp::Min => "min",
        }
    }

    /// Apply the operation to two scalars.
    #[inline]
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
            BinaryOp::Div => a / b,
            BinaryOp::Pow => a.powf(b),
            BinaryOp::Max => a.max(b),
            BinaryOp::Min => a.min(b),
        }
    }
}

/// Unary element-wise operations supported by the substrate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Sin,
    Cos,
    Exp,
    Log,
    Sqrt,
    Tanh,
    Abs,
    Relu,
    Sigmoid,
    Square,
    Recip,
}

impl UnaryOp {
    /// Apply the operation to a scalar.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            UnaryOp::Neg => -x,
            UnaryOp::Sin => x.sin(),
            UnaryOp::Cos => x.cos(),
            UnaryOp::Exp => x.exp(),
            UnaryOp::Log => x.ln(),
            UnaryOp::Sqrt => x.sqrt(),
            UnaryOp::Tanh => x.tanh(),
            UnaryOp::Abs => x.abs(),
            UnaryOp::Relu => x.max(0.0),
            UnaryOp::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            UnaryOp::Square => x * x,
            UnaryOp::Recip => 1.0 / x,
        }
    }

    /// Derivative of the operation at `x` (with `y = op(x)` available for ops
    /// whose derivative is cheaper in terms of the output).
    #[inline]
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            UnaryOp::Neg => -1.0,
            UnaryOp::Sin => x.cos(),
            UnaryOp::Cos => -x.sin(),
            UnaryOp::Exp => x.exp(),
            UnaryOp::Log => 1.0 / x,
            UnaryOp::Sqrt => 0.5 / x.sqrt(),
            UnaryOp::Tanh => 1.0 - x.tanh() * x.tanh(),
            UnaryOp::Abs => {
                if x >= 0.0 {
                    1.0
                } else {
                    -1.0
                }
            }
            UnaryOp::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            UnaryOp::Sigmoid => {
                let s = 1.0 / (1.0 + (-x).exp());
                s * (1.0 - s)
            }
            UnaryOp::Square => 2.0 * x,
            UnaryOp::Recip => -1.0 / (x * x),
        }
    }
}

impl Tensor {
    fn check_same_shape(&self, other: &Tensor, op: &'static str) -> TensorResult<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
            });
        }
        Ok(())
    }

    /// Element-wise binary operation with a same-shaped tensor.
    pub fn binary(&self, other: &Tensor, op: BinaryOp) -> TensorResult<Tensor> {
        self.check_same_shape(other, op.name())?;
        let data: Vec<f64> = self
            .data()
            .iter()
            .zip(other.data().iter())
            .map(|(&a, &b)| op.apply(a, b))
            .collect();
        Tensor::from_vec(data, self.shape())
    }

    /// Element-wise binary operation with a scalar on the right.
    pub fn binary_scalar(&self, rhs: f64, op: BinaryOp) -> Tensor {
        let data: Vec<f64> = self.data().iter().map(|&a| op.apply(a, rhs)).collect();
        Tensor::from_vec(data, self.shape()).expect("same shape")
    }

    /// Element-wise unary operation.
    pub fn unary(&self, op: UnaryOp) -> Tensor {
        let data: Vec<f64> = self.data().iter().map(|&a| op.apply(a)).collect();
        Tensor::from_vec(data, self.shape()).expect("same shape")
    }

    /// `self + other`
    pub fn add(&self, other: &Tensor) -> TensorResult<Tensor> {
        self.binary(other, BinaryOp::Add)
    }

    /// `self - other`
    pub fn sub(&self, other: &Tensor) -> TensorResult<Tensor> {
        self.binary(other, BinaryOp::Sub)
    }

    /// `self * other` (element-wise)
    pub fn mul(&self, other: &Tensor) -> TensorResult<Tensor> {
        self.binary(other, BinaryOp::Mul)
    }

    /// `self / other` (element-wise)
    pub fn div(&self, other: &Tensor) -> TensorResult<Tensor> {
        self.binary(other, BinaryOp::Div)
    }

    /// Multiply every element by a scalar.
    pub fn scale(&self, s: f64) -> Tensor {
        self.binary_scalar(s, BinaryOp::Mul)
    }

    /// Add a scalar to every element.
    pub fn add_scalar(&self, s: f64) -> Tensor {
        self.binary_scalar(s, BinaryOp::Add)
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) -> TensorResult<()> {
        self.check_same_shape(other, "add_assign")?;
        for (a, &b) in self.data_mut().iter_mut().zip(other.data().iter()) {
            *a += b;
        }
        Ok(())
    }

    /// In-place `self += alpha * other` (BLAS axpy).
    pub fn axpy(&mut self, alpha: f64, other: &Tensor) -> TensorResult<()> {
        self.check_same_shape(other, "axpy")?;
        for (a, &b) in self.data_mut().iter_mut().zip(other.data().iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// In-place element-wise multiply.
    pub fn mul_assign(&mut self, other: &Tensor) -> TensorResult<()> {
        self.check_same_shape(other, "mul_assign")?;
        for (a, &b) in self.data_mut().iter_mut().zip(other.data().iter()) {
            *a *= b;
        }
        Ok(())
    }

    /// Map each element through `f`.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tensor {
        let data: Vec<f64> = self.data().iter().map(|&a| f(a)).collect();
        Tensor::from_vec(data, self.shape()).expect("same shape")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f64]) -> Tensor {
        Tensor::from_vec(v.to_vec(), &[v.len()]).unwrap()
    }

    #[test]
    fn add_sub_mul_div() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).unwrap().data(), &[4.0, 2.5, 2.0]);
    }

    #[test]
    fn shape_mismatch_is_error() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn scalar_ops() {
        let a = t(&[1.0, -2.0]);
        assert_eq!(a.scale(3.0).data(), &[3.0, -6.0]);
        assert_eq!(a.add_scalar(1.0).data(), &[2.0, -1.0]);
    }

    #[test]
    fn unary_ops_match_std() {
        let a = t(&[0.5, 1.0]);
        let s = a.unary(UnaryOp::Sin);
        assert!((s.data()[0] - 0.5f64.sin()).abs() < 1e-15);
        let r = t(&[-1.0, 2.0]).unary(UnaryOp::Relu);
        assert_eq!(r.data(), &[0.0, 2.0]);
    }

    #[test]
    fn unary_derivatives_match_finite_differences() {
        let ops = [
            UnaryOp::Sin,
            UnaryOp::Cos,
            UnaryOp::Exp,
            UnaryOp::Log,
            UnaryOp::Sqrt,
            UnaryOp::Tanh,
            UnaryOp::Sigmoid,
            UnaryOp::Square,
            UnaryOp::Recip,
        ];
        let x = 0.7;
        let h = 1e-6;
        for op in ops {
            let fd = (op.apply(x + h) - op.apply(x - h)) / (2.0 * h);
            let an = op.derivative(x);
            assert!(
                (fd - an).abs() < 1e-5,
                "derivative mismatch for {op:?}: fd={fd} an={an}"
            );
        }
    }

    #[test]
    fn axpy_and_add_assign() {
        let mut a = t(&[1.0, 1.0]);
        let b = t(&[2.0, 3.0]);
        a.add_assign(&b).unwrap();
        assert_eq!(a.data(), &[3.0, 4.0]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.data(), &[4.0, 5.5]);
    }

    #[test]
    fn map_applies_closure() {
        let a = t(&[1.0, 2.0]);
        assert_eq!(a.map(|x| x * x + 1.0).data(), &[2.0, 5.0]);
    }

    #[test]
    fn binary_op_apply_covers_all() {
        assert_eq!(BinaryOp::Pow.apply(2.0, 3.0), 8.0);
        assert_eq!(BinaryOp::Max.apply(2.0, 3.0), 3.0);
        assert_eq!(BinaryOp::Min.apply(2.0, 3.0), 2.0);
    }
}
