//! The dense, row-major [`Tensor`] type.

use crate::error::{TensorError, TensorResult};

/// A dense, row-major, contiguously stored `f64` tensor of arbitrary rank.
///
/// Rank-0 tensors (scalars) are represented with an empty shape and a single
/// element, mirroring NumPy's 0-d arrays.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    strides: Vec<usize>,
    data: Vec<f64>,
}

/// Compute row-major strides for a shape.
pub fn row_major_strides(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    strides
}

/// Number of elements implied by a shape (empty shape = scalar = 1 element).
pub fn shape_volume(shape: &[usize]) -> usize {
    shape
        .iter()
        .product::<usize>()
        .max(if shape.is_empty() { 1 } else { 0 })
}

impl Tensor {
    /// Create a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// Create a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Create a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f64) -> Self {
        let volume = if shape.is_empty() {
            1
        } else {
            shape.iter().product()
        };
        Tensor {
            shape: shape.to_vec(),
            strides: row_major_strides(shape),
            data: vec![value; volume],
        }
    }

    /// Create a rank-0 scalar tensor.
    pub fn scalar(value: f64) -> Self {
        Tensor {
            shape: vec![],
            strides: vec![],
            data: vec![value],
        }
    }

    /// Build a tensor from a flat row-major data vector and a shape.
    pub fn from_vec(data: Vec<f64>, shape: &[usize]) -> TensorResult<Self> {
        let volume = if shape.is_empty() {
            1
        } else {
            shape.iter().product()
        };
        if data.len() != volume {
            return Err(TensorError::ShapeDataMismatch {
                expected: volume,
                got: data.len(),
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            strides: row_major_strides(shape),
            data,
        })
    }

    /// Build a tensor by evaluating `f(multi_index)` for every element.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(&[usize]) -> f64) -> Self {
        let mut t = Tensor::zeros(shape);
        let volume = t.len();
        let mut idx = vec![0usize; shape.len()];
        for flat in 0..volume {
            t.data[flat] = f(&idx);
            // advance multi-index (row-major)
            for d in (0..shape.len()).rev() {
                idx[d] += 1;
                if idx[d] < shape[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        t
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Row-major strides (in elements).
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Rank (number of dimensions). Scalars have rank 0.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements (only possible with a 0-length dimension).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes of the element storage (used by the memory model of the
    /// ILP checkpointing formulation).
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// Immutable access to the flat row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the tensor, returning its flat data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Flatten a multi-index into a flat offset, with bounds checking.
    pub fn offset(&self, index: &[usize]) -> TensorResult<usize> {
        if index.len() != self.shape.len() {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.shape.clone(),
            });
        }
        let mut off = 0usize;
        for (d, (&i, (&dim, &stride))) in index
            .iter()
            .zip(self.shape.iter().zip(self.strides.iter()))
            .enumerate()
        {
            let _ = d;
            if i >= dim {
                return Err(TensorError::IndexOutOfBounds {
                    index: index.to_vec(),
                    shape: self.shape.clone(),
                });
            }
            off += i * stride;
        }
        Ok(off)
    }

    /// Read a single element (bounds-checked).
    pub fn at(&self, index: &[usize]) -> TensorResult<f64> {
        Ok(self.data[self.offset(index)?])
    }

    /// Mutable reference to a single element (bounds-checked).
    pub fn at_mut(&mut self, index: &[usize]) -> TensorResult<&mut f64> {
        let off = self.offset(index)?;
        Ok(&mut self.data[off])
    }

    /// Read a single element without bounds checks beyond debug assertions.
    ///
    /// The SDFG runtime performs its bound analysis symbolically (at the
    /// memlet level), mirroring the paper's point that DaCe-generated loops
    /// carry no per-iteration bound checks.
    #[inline]
    pub fn get_unchecked(&self, flat: usize) -> f64 {
        debug_assert!(flat < self.data.len());
        self.data[flat]
    }

    /// Write a single element by flat offset.
    #[inline]
    pub fn set_unchecked(&mut self, flat: usize, value: f64) {
        debug_assert!(flat < self.data.len());
        self.data[flat] = value;
    }

    /// Return the scalar value of a rank-0 or single-element tensor.
    pub fn item(&self) -> TensorResult<f64> {
        if self.data.len() == 1 {
            Ok(self.data[0])
        } else {
            Err(TensorError::RankMismatch {
                op: "item",
                expected: 0,
                got: self.rank(),
            })
        }
    }

    /// Reshape into a new shape with the same number of elements.
    pub fn reshape(&self, shape: &[usize]) -> TensorResult<Tensor> {
        let volume: usize = if shape.is_empty() {
            1
        } else {
            shape.iter().product()
        };
        if volume != self.data.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected: volume,
                got: self.data.len(),
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            strides: row_major_strides(shape),
            data: self.data.clone(),
        })
    }

    /// Fill every element with `value`.
    pub fn fill(&mut self, value: f64) {
        for x in &mut self.data {
            *x = value;
        }
    }

    /// Iterate over all multi-indices of this tensor in row-major order.
    pub fn indices(&self) -> MultiIndexIter {
        MultiIndexIter::new(self.shape.clone())
    }
}

/// Iterator over all multi-indices of a shape in row-major order.
pub struct MultiIndexIter {
    shape: Vec<usize>,
    current: Vec<usize>,
    remaining: usize,
}

impl MultiIndexIter {
    /// Create an iterator over the index space of `shape`.
    pub fn new(shape: Vec<usize>) -> Self {
        let volume: usize = if shape.is_empty() {
            1
        } else {
            shape.iter().product()
        };
        MultiIndexIter {
            current: vec![0; shape.len()],
            shape,
            remaining: volume,
        }
    }
}

impl Iterator for MultiIndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.remaining == 0 {
            return None;
        }
        let out = self.current.clone();
        self.remaining -= 1;
        for d in (0..self.shape.len()).rev() {
            self.current[d] += 1;
            if self.current[d] < self.shape[d] {
                break;
            }
            self.current[d] = 0;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn strides_are_row_major() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.strides(), &[12, 4, 1]);
    }

    #[test]
    fn scalar_tensor() {
        let s = Tensor::scalar(3.5);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.item().unwrap(), 3.5);
    }

    #[test]
    fn from_vec_checks_volume() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn indexing_roundtrip() {
        let mut t = Tensor::zeros(&[3, 4]);
        *t.at_mut(&[1, 2]).unwrap() = 7.0;
        assert_eq!(t.at(&[1, 2]).unwrap(), 7.0);
        assert_eq!(t.at(&[0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn indexing_out_of_bounds() {
        let t = Tensor::zeros(&[2, 2]);
        assert!(t.at(&[2, 0]).is_err());
        assert!(t.at(&[0]).is_err());
    }

    #[test]
    fn from_fn_builds_expected_values() {
        let t = Tensor::from_fn(&[2, 3], |idx| (idx[0] * 10 + idx[1]) as f64);
        assert_eq!(t.at(&[1, 2]).unwrap(), 12.0);
        assert_eq!(t.at(&[0, 1]).unwrap(), 1.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|x| x as f64).collect(), &[2, 3]).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.at(&[2, 1]).unwrap(), 5.0);
        assert!(t.reshape(&[4]).is_err());
    }

    #[test]
    fn multi_index_iter_covers_all() {
        let t = Tensor::zeros(&[2, 2]);
        let idxs: Vec<_> = t.indices().collect();
        assert_eq!(idxs, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn multi_index_iter_scalar() {
        let t = Tensor::scalar(1.0);
        let idxs: Vec<_> = t.indices().collect();
        assert_eq!(idxs, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn size_bytes_counts_f64() {
        let t = Tensor::zeros(&[10, 10]);
        assert_eq!(t.size_bytes(), 800);
    }
}
