//! Error types for tensor operations.

use std::fmt;

/// Result alias used throughout the crate.
pub type TensorResult<T> = Result<T, TensorError>;

/// Errors raised by tensor construction and kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// The number of elements does not match the requested shape.
    ShapeDataMismatch { expected: usize, got: usize },
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        op: &'static str,
        lhs: Vec<usize>,
        rhs: Vec<usize>,
    },
    /// An index is out of bounds for the tensor shape.
    IndexOutOfBounds {
        index: Vec<usize>,
        shape: Vec<usize>,
    },
    /// The tensor does not have the rank required by the operation.
    RankMismatch {
        op: &'static str,
        expected: usize,
        got: usize,
    },
    /// A slice range is invalid (start > end or end > dimension).
    InvalidSlice {
        dim: usize,
        start: usize,
        end: usize,
        len: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { expected, got } => {
                write!(
                    f,
                    "data length {got} does not match shape volume {expected}"
                )
            }
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: {lhs:?} vs {rhs:?}")
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::RankMismatch { op, expected, got } => {
                write!(f, "{op} expects rank {expected}, got rank {got}")
            }
            TensorError::InvalidSlice {
                dim,
                start,
                end,
                len,
            } => write!(
                f,
                "invalid slice {start}..{end} along dimension {dim} of length {len}"
            ),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = TensorError::ShapeMismatch {
            op: "add",
            lhs: vec![2, 2],
            rhs: vec![3],
        };
        let s = format!("{e}");
        assert!(s.contains("add"));
        assert!(s.contains("[2, 2]"));
    }

    #[test]
    fn error_is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(TensorError::ShapeDataMismatch {
            expected: 4,
            got: 3,
        });
        assert!(e.to_string().contains("4"));
    }
}
