//! Linear-algebra kernels: matmul, matvec, dot, outer product, transpose.
//!
//! These stand in for the optimized library calls (MKL / CBLAS / cuBLAS) that
//! DaCe expands library nodes into.  The matrix multiplication is blocked and
//! parallelised over row panels with rayon, which is the idiomatic Rust
//! (rayon) equivalent of the OpenMP-parallel kernels DaCe emits.

use rayon::prelude::*;

use crate::error::{TensorError, TensorResult};
use crate::tensor::Tensor;

/// Threshold (in output elements) above which matmul parallelises with rayon.
const PAR_THRESHOLD: usize = 64 * 64;
/// Block size for the k-dimension of the blocked matmul.
const BLOCK_K: usize = 64;

fn expect_rank(t: &Tensor, rank: usize, op: &'static str) -> TensorResult<()> {
    if t.rank() != rank {
        return Err(TensorError::RankMismatch {
            op,
            expected: rank,
            got: t.rank(),
        });
    }
    Ok(())
}

impl Tensor {
    /// Matrix-matrix multiplication `self[M,K] @ other[K,N] -> [M,N]`.
    pub fn matmul(&self, other: &Tensor) -> TensorResult<Tensor> {
        expect_rank(self, 2, "matmul")?;
        expect_rank(other, 2, "matmul")?;
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
            });
        }
        let a = self.data();
        let b = other.data();
        let mut out = vec![0.0f64; m * n];

        let row_kernel = |i: usize, row_out: &mut [f64]| {
            // blocked over k to keep the B panel in cache
            let mut kk = 0;
            while kk < k {
                let kend = (kk + BLOCK_K).min(k);
                for p in kk..kend {
                    let aip = a[i * k + p];
                    if aip == 0.0 {
                        continue;
                    }
                    let brow = &b[p * n..(p + 1) * n];
                    for (o, &bv) in row_out.iter_mut().zip(brow.iter()) {
                        *o += aip * bv;
                    }
                }
                kk = kend;
            }
        };

        if m * n >= PAR_THRESHOLD {
            out.par_chunks_mut(n)
                .enumerate()
                .for_each(|(i, row)| row_kernel(i, row));
        } else {
            for (i, row) in out.chunks_mut(n).enumerate() {
                row_kernel(i, row);
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix-vector product `self[M,K] @ v[K] -> [M]`.
    pub fn matvec(&self, v: &Tensor) -> TensorResult<Tensor> {
        expect_rank(self, 2, "matvec")?;
        expect_rank(v, 1, "matvec")?;
        let (m, k) = (self.shape()[0], self.shape()[1]);
        if v.shape()[0] != k {
            return Err(TensorError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape().to_vec(),
                rhs: v.shape().to_vec(),
            });
        }
        let a = self.data();
        let x = v.data();
        let out: Vec<f64> = if m * k >= PAR_THRESHOLD {
            (0..m)
                .into_par_iter()
                .map(|i| {
                    a[i * k..(i + 1) * k]
                        .iter()
                        .zip(x.iter())
                        .map(|(&av, &xv)| av * xv)
                        .sum()
                })
                .collect()
        } else {
            (0..m)
                .map(|i| {
                    a[i * k..(i + 1) * k]
                        .iter()
                        .zip(x.iter())
                        .map(|(&av, &xv)| av * xv)
                        .sum()
                })
                .collect()
        };
        Tensor::from_vec(out, &[m])
    }

    /// Vector dot product.
    pub fn dot(&self, other: &Tensor) -> TensorResult<f64> {
        expect_rank(self, 1, "dot")?;
        expect_rank(other, 1, "dot")?;
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "dot",
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
            });
        }
        Ok(self
            .data()
            .iter()
            .zip(other.data().iter())
            .map(|(&a, &b)| a * b)
            .sum())
    }

    /// Outer product of two vectors: `self[M] ⊗ other[N] -> [M,N]`.
    pub fn outer(&self, other: &Tensor) -> TensorResult<Tensor> {
        expect_rank(self, 1, "outer")?;
        expect_rank(other, 1, "outer")?;
        let m = self.shape()[0];
        let n = other.shape()[0];
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            let ai = self.data()[i];
            for j in 0..n {
                out[i * n + j] = ai * other.data()[j];
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// 2-D transpose.
    pub fn transpose(&self) -> TensorResult<Tensor> {
        expect_rank(self, 2, "transpose")?;
        let (m, n) = (self.shape()[0], self.shape()[1]);
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data()[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// General matrix multiply `alpha * A @ B + beta * C`, overwriting and
    /// returning a new tensor (the BLAS GEMM contract).
    pub fn gemm(&self, b: &Tensor, c: &Tensor, alpha: f64, beta: f64) -> TensorResult<Tensor> {
        let ab = self.matmul(b)?;
        let mut out = c.scale(beta);
        out.axpy(alpha, &ab)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at(&[i, p]).unwrap() * b.at(&[p, j]).unwrap();
                }
                *out.at_mut(&[i, j]).unwrap() = acc;
            }
        }
        out
    }

    #[test]
    fn matmul_small_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_matches_naive_reference() {
        let a = Tensor::from_fn(&[13, 7], |i| (i[0] * 7 + i[1]) as f64 * 0.1);
        let b = Tensor::from_fn(&[7, 9], |i| (i[0] as f64 - i[1] as f64) * 0.3);
        let fast = a.matmul(&b).unwrap();
        let slow = naive_matmul(&a, &b);
        assert!(crate::allclose(&fast, &slow, 1e-10, 1e-12));
    }

    #[test]
    fn matmul_large_parallel_path() {
        let a = Tensor::from_fn(&[80, 64], |i| ((i[0] + i[1]) % 5) as f64);
        let b = Tensor::from_fn(&[64, 80], |i| ((i[0] * i[1]) % 3) as f64);
        let fast = a.matmul(&b).unwrap();
        let slow = naive_matmul(&a, &b);
        assert!(crate::allclose(&fast, &slow, 1e-10, 1e-12));
    }

    #[test]
    fn matmul_shape_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(a.matmul(&b).is_err());
        let v = Tensor::zeros(&[3]);
        assert!(v.matmul(&a).is_err());
    }

    #[test]
    fn matvec_matches_manual() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let x = Tensor::from_vec(vec![1.0, 0.0, -1.0], &[3]).unwrap();
        let y = a.matvec(&x).unwrap();
        assert_eq!(y.data(), &[-2.0, -2.0]);
    }

    #[test]
    fn dot_and_outer() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert_eq!(a.dot(&b).unwrap(), 11.0);
        let o = a.outer(&b).unwrap();
        assert_eq!(o.shape(), &[2, 2]);
        assert_eq!(o.data(), &[3.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_fn(&[3, 5], |i| (i[0] * 5 + i[1]) as f64);
        let t = a.transpose().unwrap();
        assert_eq!(t.shape(), &[5, 3]);
        let tt = t.transpose().unwrap();
        assert_eq!(tt, a);
    }

    #[test]
    fn gemm_combines_alpha_beta() {
        let a = Tensor::ones(&[2, 2]);
        let b = Tensor::ones(&[2, 2]);
        let c = Tensor::full(&[2, 2], 10.0);
        let r = a.gemm(&b, &c, 2.0, 0.5).unwrap();
        // 2*(A@B) + 0.5*C = 2*2 + 5 = 9
        assert!(r.data().iter().all(|&x| (x - 9.0).abs() < 1e-12));
    }
}
