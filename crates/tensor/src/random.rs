//! Deterministic pseudo-random tensor generation for workload inputs.
//!
//! NPBench initialises its inputs with `np.random` under a fixed seed; the
//! kernel suite here does the same via these helpers so that DaCe AD and the
//! JAX-like baseline consume bit-identical inputs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tensor::Tensor;

/// Uniform random tensor in `[0, 1)` from a seeded RNG.
pub fn uniform(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let volume: usize = if shape.is_empty() {
        1
    } else {
        shape.iter().product()
    };
    let data: Vec<f64> = (0..volume).map(|_| rng.gen::<f64>()).collect();
    Tensor::from_vec(data, shape).expect("volume matches")
}

/// Uniform random tensor in `[lo, hi)`.
pub fn uniform_range(shape: &[usize], lo: f64, hi: f64, seed: u64) -> Tensor {
    uniform(shape, seed).map(|x| lo + x * (hi - lo))
}

/// Standard-normal random tensor (Box–Muller over the seeded uniform stream).
pub fn normal(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let volume: usize = if shape.is_empty() {
        1
    } else {
        shape.iter().product()
    };
    let data: Vec<f64> = (0..volume)
        .map(|_| {
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen::<f64>();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        })
        .collect();
    Tensor::from_vec(data, shape).expect("volume matches")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_deterministic() {
        let a = uniform(&[4, 4], 42);
        let b = uniform(&[4, 4], 42);
        assert_eq!(a, b);
        let c = uniform(&[4, 4], 43);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let a = uniform(&[100], 7);
        assert!(a.data().iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn uniform_range_respects_bounds() {
        let a = uniform_range(&[100], -2.0, 3.0, 9);
        assert!(a.data().iter().all(|&x| (-2.0..3.0).contains(&x)));
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let a = normal(&[10_000], 3);
        let mean = a.mean();
        let var = a.map(|x| (x - mean) * (x - mean)).mean();
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
