//! Reductions: full-tensor sum/max/min/mean and axis reductions.

use crate::error::{TensorError, TensorResult};
use crate::tensor::Tensor;

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data().iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f64
        }
    }

    /// Maximum element (negative infinity for empty tensors).
    pub fn max_value(&self) -> f64 {
        self.data()
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum element (positive infinity for empty tensors).
    pub fn min_value(&self) -> f64 {
        self.data().iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Sum along one axis, removing it from the shape.
    pub fn sum_axis(&self, axis: usize) -> TensorResult<Tensor> {
        if axis >= self.rank() {
            return Err(TensorError::RankMismatch {
                op: "sum_axis",
                expected: axis + 1,
                got: self.rank(),
            });
        }
        let mut out_shape: Vec<usize> = self.shape().to_vec();
        out_shape.remove(axis);
        let mut out = Tensor::zeros(&out_shape);
        for idx in self.indices() {
            let mut out_idx = idx.clone();
            out_idx.remove(axis);
            let v = self.at(&idx).unwrap();
            *out.at_mut(&out_idx).unwrap() += v;
        }
        Ok(out)
    }

    /// L2 norm of the flattened tensor.
    pub fn norm(&self) -> f64 {
        self.data().iter().map(|&x| x * x).sum::<f64>().sqrt()
    }

    /// Frobenius-distance between two same-shaped tensors.
    pub fn distance(&self, other: &Tensor) -> TensorResult<f64> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "distance",
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
            });
        }
        Ok(self
            .data()
            .iter()
            .zip(other.data().iter())
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_mean() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
    }

    #[test]
    fn max_min() {
        let t = Tensor::from_vec(vec![-1.0, 5.0, 3.0], &[3]).unwrap();
        assert_eq!(t.max_value(), 5.0);
        assert_eq!(t.min_value(), -1.0);
    }

    #[test]
    fn sum_axis_rows_and_cols() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let rows = t.sum_axis(0).unwrap();
        assert_eq!(rows.shape(), &[3]);
        assert_eq!(rows.data(), &[5.0, 7.0, 9.0]);
        let cols = t.sum_axis(1).unwrap();
        assert_eq!(cols.shape(), &[2]);
        assert_eq!(cols.data(), &[6.0, 15.0]);
        assert!(t.sum_axis(2).is_err());
    }

    #[test]
    fn norm_and_distance() {
        let a = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert_eq!(a.norm(), 5.0);
        let b = Tensor::from_vec(vec![0.0, 0.0], &[2]).unwrap();
        assert_eq!(a.distance(&b).unwrap(), 5.0);
        assert!(a.distance(&Tensor::zeros(&[3])).is_err());
    }
}
