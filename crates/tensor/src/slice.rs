//! Slicing and sub-tensor update operations.
//!
//! Two flavours are provided:
//! * checked, copying [`Tensor::slice`] / [`Tensor::update_slice`] — these are
//!   what the JAX-like baseline uses to model `lax.dynamic_slice` and
//!   `lax.dynamic_update_slice` (allocate-and-copy semantics, clamped start
//!   indices, per-call bound handling), and
//! * direct element accessors (in `tensor.rs`) used by the SDFG interpreter
//!   for single-element memlets, which is the "cheap pointer movement" path
//!   the paper attributes to DaCe-generated code.

use crate::error::{TensorError, TensorResult};
use crate::tensor::Tensor;

/// A half-open range along one dimension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DimRange {
    pub start: usize,
    pub end: usize,
}

impl DimRange {
    /// Construct a range; `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        DimRange { start, end }
    }

    /// Length of the range.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// True if the range is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Tensor {
    fn check_ranges(&self, ranges: &[DimRange]) -> TensorResult<()> {
        if ranges.len() != self.rank() {
            return Err(TensorError::RankMismatch {
                op: "slice",
                expected: self.rank(),
                got: ranges.len(),
            });
        }
        for (d, (r, &len)) in ranges.iter().zip(self.shape().iter()).enumerate() {
            if r.start > r.end || r.end > len {
                return Err(TensorError::InvalidSlice {
                    dim: d,
                    start: r.start,
                    end: r.end,
                    len,
                });
            }
        }
        Ok(())
    }

    /// Copy out a rectangular sub-tensor.
    pub fn slice(&self, ranges: &[DimRange]) -> TensorResult<Tensor> {
        self.check_ranges(ranges)?;
        let out_shape: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        let mut out = Tensor::zeros(&out_shape);
        let volume = out.len();
        if volume == 0 {
            return Ok(out);
        }
        let mut idx = vec![0usize; out_shape.len()];
        let mut src_idx = vec![0usize; out_shape.len()];
        for flat in 0..volume {
            for d in 0..out_shape.len() {
                src_idx[d] = ranges[d].start + idx[d];
            }
            let v = self.at(&src_idx)?;
            out.data_mut()[flat] = v;
            for d in (0..out_shape.len()).rev() {
                idx[d] += 1;
                if idx[d] < out_shape[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        Ok(out)
    }

    /// Return a copy of `self` with the rectangular region starting at
    /// `start` replaced by `patch` (the `dynamic_update_slice` contract:
    /// a brand-new full-size tensor is allocated).
    pub fn update_slice(&self, start: &[usize], patch: &Tensor) -> TensorResult<Tensor> {
        if start.len() != self.rank() || patch.rank() != self.rank() {
            return Err(TensorError::RankMismatch {
                op: "update_slice",
                expected: self.rank(),
                got: start.len().max(patch.rank()),
            });
        }
        // Clamp the start index the way XLA's dynamic_update_slice does.
        let clamped: Vec<usize> = start
            .iter()
            .zip(self.shape().iter().zip(patch.shape().iter()))
            .map(|(&s, (&dim, &plen))| s.min(dim.saturating_sub(plen)))
            .collect();
        let mut out = self.clone();
        for idx in patch.indices() {
            let mut dst = idx.clone();
            for d in 0..dst.len() {
                dst[d] += clamped[d];
            }
            let v = patch.at(&idx)?;
            *out.at_mut(&dst)? = v;
        }
        Ok(out)
    }

    /// Extract a 2-D row as a vector.
    pub fn row(&self, i: usize) -> TensorResult<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "row",
                expected: 2,
                got: self.rank(),
            });
        }
        self.slice(&[DimRange::new(i, i + 1), DimRange::new(0, self.shape()[1])])?
            .reshape(&[self.shape()[1]])
    }

    /// Extract a 2-D column as a vector.
    pub fn col(&self, j: usize) -> TensorResult<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "col",
                expected: 2,
                got: self.rank(),
            });
        }
        self.slice(&[DimRange::new(0, self.shape()[0]), DimRange::new(j, j + 1)])?
            .reshape(&[self.shape()[0]])
    }

    /// Concatenate two tensors along axis 0.
    pub fn concat0(&self, other: &Tensor) -> TensorResult<Tensor> {
        if self.rank() != other.rank()
            || self.shape()[1..] != other.shape()[1..]
            || self.rank() == 0
        {
            return Err(TensorError::ShapeMismatch {
                op: "concat0",
                lhs: self.shape().to_vec(),
                rhs: other.shape().to_vec(),
            });
        }
        let mut shape = self.shape().to_vec();
        shape[0] += other.shape()[0];
        let mut data = Vec::with_capacity(self.len() + other.len());
        data.extend_from_slice(self.data());
        data.extend_from_slice(other.data());
        Tensor::from_vec(data, &shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_extracts_block() {
        let t = Tensor::from_fn(&[4, 4], |i| (i[0] * 4 + i[1]) as f64);
        let s = t
            .slice(&[DimRange::new(1, 3), DimRange::new(2, 4)])
            .unwrap();
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.data(), &[6.0, 7.0, 10.0, 11.0]);
    }

    #[test]
    fn slice_validates_ranges() {
        let t = Tensor::zeros(&[3, 3]);
        assert!(t
            .slice(&[DimRange::new(0, 4), DimRange::new(0, 3)])
            .is_err());
        assert!(t
            .slice(&[DimRange::new(2, 1), DimRange::new(0, 3)])
            .is_err());
        assert!(t.slice(&[DimRange::new(0, 3)]).is_err());
    }

    #[test]
    fn update_slice_returns_new_tensor() {
        let t = Tensor::zeros(&[3, 3]);
        let patch = Tensor::ones(&[2, 2]);
        let u = t.update_slice(&[1, 1], &patch).unwrap();
        // original untouched (immutability semantics)
        assert_eq!(t.sum(), 0.0);
        assert_eq!(u.sum(), 4.0);
        assert_eq!(u.at(&[1, 1]).unwrap(), 1.0);
        assert_eq!(u.at(&[0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn update_slice_clamps_like_xla() {
        let t = Tensor::zeros(&[3, 3]);
        let patch = Tensor::ones(&[2, 2]);
        // start (2,2) would overflow; XLA clamps to (1,1)
        let u = t.update_slice(&[2, 2], &patch).unwrap();
        assert_eq!(u.at(&[1, 1]).unwrap(), 1.0);
        assert_eq!(u.at(&[2, 2]).unwrap(), 1.0);
    }

    #[test]
    fn row_and_col() {
        let t = Tensor::from_fn(&[3, 2], |i| (i[0] * 2 + i[1]) as f64);
        assert_eq!(t.row(1).unwrap().data(), &[2.0, 3.0]);
        assert_eq!(t.col(1).unwrap().data(), &[1.0, 3.0, 5.0]);
        assert!(Tensor::zeros(&[2]).row(0).is_err());
    }

    #[test]
    fn concat0_stacks_rows() {
        let a = Tensor::ones(&[1, 2]);
        let b = Tensor::zeros(&[2, 2]);
        let c = a.concat0(&b).unwrap();
        assert_eq!(c.shape(), &[3, 2]);
        assert_eq!(c.data()[0], 1.0);
        assert_eq!(c.data()[5], 0.0);
        assert!(a.concat0(&Tensor::zeros(&[2, 3])).is_err());
    }

    #[test]
    fn slice_roundtrip_with_update() {
        let t = Tensor::from_fn(&[5, 5], |i| (i[0] + i[1]) as f64);
        let block = t
            .slice(&[DimRange::new(1, 4), DimRange::new(1, 4)])
            .unwrap();
        let restored = t.update_slice(&[1, 1], &block).unwrap();
        assert_eq!(restored, t);
    }
}
