//! # dace-tensor
//!
//! Dense tensor substrate for the DaCe AD reproduction.
//!
//! This crate stands in for the NumPy array object plus the optimized BLAS
//! libraries (MKL / CBLAS) that the paper's generated code calls into.  Both
//! the DaCe AD runtime (`dace-runtime`) and the JAX-like baseline (`jax-rs`)
//! execute on the same [`Tensor`] type and the same kernels, so performance
//! comparisons between them measure the *algorithms* (in-place gradient
//! propagation vs. immutable re-materialisation), not the substrate.
//!
//! Design points:
//! * Row-major, contiguous `f64` storage. The paper's float32 deep-learning
//!   kernels run in f64 here (documented substitution in `DESIGN.md`).
//! * Element-wise and reduction kernels are straightforward loops; matrix
//!   multiplication is blocked and parallelised with rayon, standing in for
//!   the optimized library calls DaCe pattern-matches into library nodes.
//! * Slicing produces owned tensors (copies); the zero-copy "cheap pointer
//!   movement" path the paper highlights for DaCe is modelled by scalar
//!   element accessors ([`Tensor::at`] / [`Tensor::at_mut`]) which the SDFG
//!   interpreter uses for single-element memlets.
//!
//! # Invariants
//!
//! * A [`Tensor`] is always contiguous row-major: `data.len()` equals the
//!   product of `shape()`, and strides are derived from the shape — there
//!   are no views, broadcasts or negative strides to reason about.
//! * [`Tensor`] is plain owned data (`Vec<f64>` + shape), hence `Send` and
//!   `Sync`; `dace-runtime` relies on this to move tensors between pooled
//!   sessions and worker threads and to share read-only snapshots during
//!   parallel map execution.
//! * [`allclose`] follows NumPy semantics, including non-finite handling:
//!   `NaN != NaN`, and infinities match only with equal signs.
//!
//! ```
//! use dace_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
//! assert_eq!(a.shape(), &[2, 2]);
//! assert_eq!(a.at(&[1, 0]).unwrap(), 3.0);
//! let b = a.add_scalar(1.0);
//! assert_eq!(b.data(), &[2.0, 3.0, 4.0, 5.0]);
//! // The paper's validation predicate:
//! assert!(dace_tensor::allclose(&b, &b.clone(), 1e-8, 1e-12));
//! ```

#![forbid(unsafe_code)]

pub mod error;
pub mod linalg;
pub mod ops;
pub mod random;
pub mod reduce;
pub mod slice;
pub mod tensor;

pub use error::{TensorError, TensorResult};
pub use tensor::Tensor;

/// Relative + absolute tolerance comparison mirroring `np.allclose`.
///
/// The paper validates every gradient output with `np.allclose`; the NPBench
/// cross-validation tests in this repository use the same predicate.
pub fn allclose(a: &Tensor, b: &Tensor, rtol: f64, atol: f64) -> bool {
    if a.shape() != b.shape() {
        return false;
    }
    a.data()
        .iter()
        .zip(b.data().iter())
        // NumPy semantics: non-finite values are close only when exactly
        // equal (`inf - inf = NaN` would reject equal infinities, while an
        // infinite `rtol*|y|` tolerance would accept *opposite* ones).
        .all(|(&x, &y)| {
            x == y || (x.is_finite() && y.is_finite() && (x - y).abs() <= atol + rtol * y.abs())
        })
}

/// Default-tolerance variant of [`allclose`] (`rtol = 1e-5`, `atol = 1e-8`,
/// the NumPy defaults).
pub fn allclose_default(a: &Tensor, b: &Tensor) -> bool {
    allclose(a, b, 1e-5, 1e-8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allclose_equal_tensors() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        assert!(allclose_default(&a, &b));
    }

    #[test]
    fn allclose_rejects_shape_mismatch() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        assert!(!allclose_default(&a, &b));
    }

    #[test]
    fn allclose_tolerates_small_error() {
        let a = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        let b = Tensor::from_vec(vec![1.0 + 1e-9], &[1]).unwrap();
        assert!(allclose_default(&a, &b));
        let c = Tensor::from_vec(vec![1.1], &[1]).unwrap();
        assert!(!allclose_default(&a, &c));
    }
}
