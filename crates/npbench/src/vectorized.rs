//! Vectorized NPBench kernels (the Fig. 10 category): whole-array programs
//! dominated by matrix-matrix / matrix-vector products.

use std::collections::HashMap;

use dace_frontend::{ArrayExpr, ProgramBuilder};
use dace_sdfg::{Sdfg, SymExpr};
use dace_tensor::random::uniform_range;
use dace_tensor::Tensor;
use jax_rs::Context;

use crate::{Category, GradOutput, Kernel, Preset, Sizes};

/// All vectorized kernels.
pub fn kernels() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(Atax),
        Box::new(Bicg),
        Box::new(Gemm),
        Box::new(Gesummv),
        Box::new(K2mm),
        Box::new(K3mm),
        Box::new(Mvt),
        Box::new(Mlp),
        Box::new(Jacobi1d),
    ]
}

fn sym_map(pairs: &[(&str, usize)]) -> HashMap<String, i64> {
    pairs
        .iter()
        .map(|(k, v)| (k.to_string(), *v as i64))
        .collect()
}

fn inputs_from(specs: &[(&str, Vec<usize>, u64)]) -> HashMap<String, Tensor> {
    specs
        .iter()
        .map(|(name, shape, seed)| (name.to_string(), uniform_range(shape, -1.0, 1.0, *seed)))
        .collect()
}

// ---------------------------------------------------------------------------
// atax: y = A^T (A x)
// ---------------------------------------------------------------------------

struct Atax;

impl Kernel for Atax {
    fn name(&self) -> &'static str {
        "atax"
    }
    fn category(&self) -> Category {
        Category::Vectorized
    }
    fn sizes(&self, preset: Preset) -> Sizes {
        match preset {
            Preset::Test => Sizes::new(6, 5, 0),
            Preset::Bench => Sizes::new(220, 180, 0),
        }
    }
    fn symbols(&self, s: &Sizes) -> HashMap<String, i64> {
        sym_map(&[("M", s.m), ("N", s.n)])
    }
    fn inputs(&self, s: &Sizes) -> HashMap<String, Tensor> {
        inputs_from(&[("A", vec![s.m, s.n], 1), ("x", vec![s.n], 2)])
    }
    fn wrt(&self) -> Vec<&'static str> {
        vec!["A", "x"]
    }
    fn build_dace(&self, _s: &Sizes) -> Sdfg {
        let mut b = ProgramBuilder::new("atax");
        let m = b.symbol("M");
        let n = b.symbol("N");
        b.add_input("A", vec![m.clone(), n.clone()]).unwrap();
        b.add_input("x", vec![n.clone()]).unwrap();
        b.add_transient("t", vec![m.clone()]).unwrap();
        b.add_transient("At", vec![n.clone(), m.clone()]).unwrap();
        b.add_transient("y", vec![n.clone()]).unwrap();
        b.add_scalar("OUT").unwrap();
        b.matvec("t", "A", "x");
        b.transpose("At", "A");
        b.matvec("y", "At", "t");
        b.sum_into("OUT", "y", false);
        b.build().unwrap()
    }
    fn run_jax(&self, _s: &Sizes, inputs: &HashMap<String, Tensor>) -> GradOutput {
        let ctx = Context::new();
        let a = ctx.input(inputs["A"].clone());
        let x = ctx.input(inputs["x"].clone());
        let t = a.matvec(&x);
        let y = a.transpose().matvec(&t);
        let out = y.sum();
        let grads = ctx.grad(&out, &[&a, &x]);
        GradOutput {
            output: out.value().data()[0],
            gradients: [
                ("A".to_string(), grads[0].clone()),
                ("x".to_string(), grads[1].clone()),
            ]
            .into_iter()
            .collect(),
        }
    }
    fn jax_loc(&self) -> usize {
        4
    }
}

// ---------------------------------------------------------------------------
// bicg: s = A^T r ; q = A p
// ---------------------------------------------------------------------------

struct Bicg;

impl Kernel for Bicg {
    fn name(&self) -> &'static str {
        "bicg"
    }
    fn category(&self) -> Category {
        Category::Vectorized
    }
    fn sizes(&self, preset: Preset) -> Sizes {
        match preset {
            Preset::Test => Sizes::new(6, 5, 0),
            Preset::Bench => Sizes::new(220, 180, 0),
        }
    }
    fn symbols(&self, s: &Sizes) -> HashMap<String, i64> {
        sym_map(&[("M", s.m), ("N", s.n)])
    }
    fn inputs(&self, s: &Sizes) -> HashMap<String, Tensor> {
        inputs_from(&[
            ("A", vec![s.n, s.m], 3),
            ("p", vec![s.m], 4),
            ("r", vec![s.n], 5),
        ])
    }
    fn wrt(&self) -> Vec<&'static str> {
        vec!["A", "p", "r"]
    }
    fn build_dace(&self, _s: &Sizes) -> Sdfg {
        let mut b = ProgramBuilder::new("bicg");
        let m = b.symbol("M");
        let n = b.symbol("N");
        b.add_input("A", vec![n.clone(), m.clone()]).unwrap();
        b.add_input("p", vec![m.clone()]).unwrap();
        b.add_input("r", vec![n.clone()]).unwrap();
        b.add_transient("At", vec![m.clone(), n.clone()]).unwrap();
        b.add_transient("s", vec![m.clone()]).unwrap();
        b.add_transient("q", vec![n.clone()]).unwrap();
        b.add_scalar("OUT").unwrap();
        b.transpose("At", "A");
        b.matvec("s", "At", "r");
        b.matvec("q", "A", "p");
        b.sum_into("OUT", "s", false);
        b.sum_into("OUT", "q", true);
        b.build().unwrap()
    }
    fn run_jax(&self, _s: &Sizes, inputs: &HashMap<String, Tensor>) -> GradOutput {
        let ctx = Context::new();
        let a = ctx.input(inputs["A"].clone());
        let p = ctx.input(inputs["p"].clone());
        let r = ctx.input(inputs["r"].clone());
        let s = a.transpose().matvec(&r);
        let q = a.matvec(&p);
        let out = s.sum().add(&q.sum());
        let grads = ctx.grad(&out, &[&a, &p, &r]);
        GradOutput {
            output: out.value().data()[0],
            gradients: [
                ("A".to_string(), grads[0].clone()),
                ("p".to_string(), grads[1].clone()),
                ("r".to_string(), grads[2].clone()),
            ]
            .into_iter()
            .collect(),
        }
    }
    fn jax_loc(&self) -> usize {
        4
    }
}

// ---------------------------------------------------------------------------
// gemm: D = alpha * A @ B + beta * C
// ---------------------------------------------------------------------------

struct Gemm;

const GEMM_ALPHA: f64 = 1.5;
const GEMM_BETA: f64 = 1.2;

impl Kernel for Gemm {
    fn name(&self) -> &'static str {
        "gemm"
    }
    fn category(&self) -> Category {
        Category::Vectorized
    }
    fn sizes(&self, preset: Preset) -> Sizes {
        match preset {
            Preset::Test => Sizes::new(6, 6, 0),
            Preset::Bench => Sizes::new(160, 160, 0),
        }
    }
    fn symbols(&self, s: &Sizes) -> HashMap<String, i64> {
        sym_map(&[("N", s.n)])
    }
    fn inputs(&self, s: &Sizes) -> HashMap<String, Tensor> {
        inputs_from(&[
            ("A", vec![s.n, s.n], 6),
            ("B", vec![s.n, s.n], 7),
            ("C", vec![s.n, s.n], 8),
        ])
    }
    fn wrt(&self) -> Vec<&'static str> {
        vec!["A", "B", "C"]
    }
    fn build_dace(&self, _s: &Sizes) -> Sdfg {
        let mut b = ProgramBuilder::new("gemm");
        let n = b.symbol("N");
        for name in ["A", "B", "C"] {
            b.add_input(name, vec![n.clone(), n.clone()]).unwrap();
        }
        b.add_transient("T", vec![n.clone(), n.clone()]).unwrap();
        b.add_transient("D", vec![n.clone(), n.clone()]).unwrap();
        b.add_scalar("OUT").unwrap();
        b.matmul("T", "A", "B");
        b.assign(
            "D",
            ArrayExpr::a("T")
                .mul(ArrayExpr::s(GEMM_ALPHA))
                .add(ArrayExpr::a("C").mul(ArrayExpr::s(GEMM_BETA))),
        );
        b.sum_into("OUT", "D", false);
        b.build().unwrap()
    }
    fn run_jax(&self, _s: &Sizes, inputs: &HashMap<String, Tensor>) -> GradOutput {
        let ctx = Context::new();
        let a = ctx.input(inputs["A"].clone());
        let bt = ctx.input(inputs["B"].clone());
        let c = ctx.input(inputs["C"].clone());
        let d = a.matmul(&bt).scale(GEMM_ALPHA).add(&c.scale(GEMM_BETA));
        let out = d.sum();
        let grads = ctx.grad(&out, &[&a, &bt, &c]);
        GradOutput {
            output: out.value().data()[0],
            gradients: [
                ("A".to_string(), grads[0].clone()),
                ("B".to_string(), grads[1].clone()),
                ("C".to_string(), grads[2].clone()),
            ]
            .into_iter()
            .collect(),
        }
    }
    fn jax_loc(&self) -> usize {
        3
    }
}

// ---------------------------------------------------------------------------
// gesummv: y = alpha * A @ x + beta * B @ x
// ---------------------------------------------------------------------------

struct Gesummv;

impl Kernel for Gesummv {
    fn name(&self) -> &'static str {
        "gesummv"
    }
    fn category(&self) -> Category {
        Category::Vectorized
    }
    fn sizes(&self, preset: Preset) -> Sizes {
        match preset {
            Preset::Test => Sizes::new(7, 0, 0),
            Preset::Bench => Sizes::new(250, 0, 0),
        }
    }
    fn symbols(&self, s: &Sizes) -> HashMap<String, i64> {
        sym_map(&[("N", s.n)])
    }
    fn inputs(&self, s: &Sizes) -> HashMap<String, Tensor> {
        inputs_from(&[
            ("A", vec![s.n, s.n], 9),
            ("B", vec![s.n, s.n], 10),
            ("x", vec![s.n], 11),
        ])
    }
    fn wrt(&self) -> Vec<&'static str> {
        vec!["A", "B", "x"]
    }
    fn build_dace(&self, _s: &Sizes) -> Sdfg {
        let mut b = ProgramBuilder::new("gesummv");
        let n = b.symbol("N");
        b.add_input("A", vec![n.clone(), n.clone()]).unwrap();
        b.add_input("B", vec![n.clone(), n.clone()]).unwrap();
        b.add_input("x", vec![n.clone()]).unwrap();
        b.add_transient("t1", vec![n.clone()]).unwrap();
        b.add_transient("t2", vec![n.clone()]).unwrap();
        b.add_transient("y", vec![n.clone()]).unwrap();
        b.add_scalar("OUT").unwrap();
        b.matvec("t1", "A", "x");
        b.matvec("t2", "B", "x");
        b.assign(
            "y",
            ArrayExpr::a("t1")
                .mul(ArrayExpr::s(1.5))
                .add(ArrayExpr::a("t2").mul(ArrayExpr::s(1.2))),
        );
        b.sum_into("OUT", "y", false);
        b.build().unwrap()
    }
    fn run_jax(&self, _s: &Sizes, inputs: &HashMap<String, Tensor>) -> GradOutput {
        let ctx = Context::new();
        let a = ctx.input(inputs["A"].clone());
        let bt = ctx.input(inputs["B"].clone());
        let x = ctx.input(inputs["x"].clone());
        let y = a.matvec(&x).scale(1.5).add(&bt.matvec(&x).scale(1.2));
        let out = y.sum();
        let grads = ctx.grad(&out, &[&a, &bt, &x]);
        GradOutput {
            output: out.value().data()[0],
            gradients: [
                ("A".to_string(), grads[0].clone()),
                ("B".to_string(), grads[1].clone()),
                ("x".to_string(), grads[2].clone()),
            ]
            .into_iter()
            .collect(),
        }
    }
    fn jax_loc(&self) -> usize {
        3
    }
}

// ---------------------------------------------------------------------------
// k2mm: E = alpha * (A @ B) @ C + beta * D
// ---------------------------------------------------------------------------

struct K2mm;

impl Kernel for K2mm {
    fn name(&self) -> &'static str {
        "k2mm"
    }
    fn category(&self) -> Category {
        Category::Vectorized
    }
    fn sizes(&self, preset: Preset) -> Sizes {
        match preset {
            Preset::Test => Sizes::new(6, 0, 0),
            Preset::Bench => Sizes::new(140, 0, 0),
        }
    }
    fn symbols(&self, s: &Sizes) -> HashMap<String, i64> {
        sym_map(&[("N", s.n)])
    }
    fn inputs(&self, s: &Sizes) -> HashMap<String, Tensor> {
        inputs_from(&[
            ("A", vec![s.n, s.n], 12),
            ("B", vec![s.n, s.n], 13),
            ("C", vec![s.n, s.n], 14),
            ("D", vec![s.n, s.n], 15),
        ])
    }
    fn wrt(&self) -> Vec<&'static str> {
        vec!["A", "B", "C", "D"]
    }
    fn build_dace(&self, _s: &Sizes) -> Sdfg {
        let mut b = ProgramBuilder::new("k2mm");
        let n = b.symbol("N");
        for name in ["A", "B", "C", "D"] {
            b.add_input(name, vec![n.clone(), n.clone()]).unwrap();
        }
        b.add_transient("T1", vec![n.clone(), n.clone()]).unwrap();
        b.add_transient("T2", vec![n.clone(), n.clone()]).unwrap();
        b.add_transient("E", vec![n.clone(), n.clone()]).unwrap();
        b.add_scalar("OUT").unwrap();
        b.matmul("T1", "A", "B");
        b.matmul("T2", "T1", "C");
        b.assign(
            "E",
            ArrayExpr::a("T2")
                .mul(ArrayExpr::s(1.5))
                .add(ArrayExpr::a("D").mul(ArrayExpr::s(1.2))),
        );
        b.sum_into("OUT", "E", false);
        b.build().unwrap()
    }
    fn run_jax(&self, _s: &Sizes, inputs: &HashMap<String, Tensor>) -> GradOutput {
        let ctx = Context::new();
        let a = ctx.input(inputs["A"].clone());
        let bt = ctx.input(inputs["B"].clone());
        let c = ctx.input(inputs["C"].clone());
        let d = ctx.input(inputs["D"].clone());
        let e = a.matmul(&bt).matmul(&c).scale(1.5).add(&d.scale(1.2));
        let out = e.sum();
        let grads = ctx.grad(&out, &[&a, &bt, &c, &d]);
        GradOutput {
            output: out.value().data()[0],
            gradients: [
                ("A".to_string(), grads[0].clone()),
                ("B".to_string(), grads[1].clone()),
                ("C".to_string(), grads[2].clone()),
                ("D".to_string(), grads[3].clone()),
            ]
            .into_iter()
            .collect(),
        }
    }
    fn jax_loc(&self) -> usize {
        3
    }
}

// ---------------------------------------------------------------------------
// k3mm: G = (A @ B) @ (C @ D)
// ---------------------------------------------------------------------------

struct K3mm;

impl Kernel for K3mm {
    fn name(&self) -> &'static str {
        "k3mm"
    }
    fn category(&self) -> Category {
        Category::Vectorized
    }
    fn sizes(&self, preset: Preset) -> Sizes {
        match preset {
            Preset::Test => Sizes::new(6, 0, 0),
            Preset::Bench => Sizes::new(140, 0, 0),
        }
    }
    fn symbols(&self, s: &Sizes) -> HashMap<String, i64> {
        sym_map(&[("N", s.n)])
    }
    fn inputs(&self, s: &Sizes) -> HashMap<String, Tensor> {
        inputs_from(&[
            ("A", vec![s.n, s.n], 16),
            ("B", vec![s.n, s.n], 17),
            ("C", vec![s.n, s.n], 18),
            ("D", vec![s.n, s.n], 19),
        ])
    }
    fn wrt(&self) -> Vec<&'static str> {
        vec!["A", "B", "C", "D"]
    }
    fn build_dace(&self, _s: &Sizes) -> Sdfg {
        let mut b = ProgramBuilder::new("k3mm");
        let n = b.symbol("N");
        for name in ["A", "B", "C", "D"] {
            b.add_input(name, vec![n.clone(), n.clone()]).unwrap();
        }
        for t in ["T1", "T2", "G"] {
            b.add_transient(t, vec![n.clone(), n.clone()]).unwrap();
        }
        b.add_scalar("OUT").unwrap();
        b.matmul("T1", "A", "B");
        b.matmul("T2", "C", "D");
        b.matmul("G", "T1", "T2");
        b.sum_into("OUT", "G", false);
        b.build().unwrap()
    }
    fn run_jax(&self, _s: &Sizes, inputs: &HashMap<String, Tensor>) -> GradOutput {
        let ctx = Context::new();
        let a = ctx.input(inputs["A"].clone());
        let bt = ctx.input(inputs["B"].clone());
        let c = ctx.input(inputs["C"].clone());
        let d = ctx.input(inputs["D"].clone());
        let g = a.matmul(&bt).matmul(&c.matmul(&d));
        let out = g.sum();
        let grads = ctx.grad(&out, &[&a, &bt, &c, &d]);
        GradOutput {
            output: out.value().data()[0],
            gradients: [
                ("A".to_string(), grads[0].clone()),
                ("B".to_string(), grads[1].clone()),
                ("C".to_string(), grads[2].clone()),
                ("D".to_string(), grads[3].clone()),
            ]
            .into_iter()
            .collect(),
        }
    }
    fn jax_loc(&self) -> usize {
        2
    }
}

// ---------------------------------------------------------------------------
// mvt: x1 += A @ y1 ; x2 += A^T @ y2
// ---------------------------------------------------------------------------

struct Mvt;

impl Kernel for Mvt {
    fn name(&self) -> &'static str {
        "mvt"
    }
    fn category(&self) -> Category {
        Category::Vectorized
    }
    fn sizes(&self, preset: Preset) -> Sizes {
        match preset {
            Preset::Test => Sizes::new(7, 0, 0),
            Preset::Bench => Sizes::new(250, 0, 0),
        }
    }
    fn symbols(&self, s: &Sizes) -> HashMap<String, i64> {
        sym_map(&[("N", s.n)])
    }
    fn inputs(&self, s: &Sizes) -> HashMap<String, Tensor> {
        inputs_from(&[
            ("A", vec![s.n, s.n], 20),
            ("y1", vec![s.n], 21),
            ("y2", vec![s.n], 22),
        ])
    }
    fn wrt(&self) -> Vec<&'static str> {
        vec!["A", "y1", "y2"]
    }
    fn build_dace(&self, _s: &Sizes) -> Sdfg {
        let mut b = ProgramBuilder::new("mvt");
        let n = b.symbol("N");
        b.add_input("A", vec![n.clone(), n.clone()]).unwrap();
        b.add_input("y1", vec![n.clone()]).unwrap();
        b.add_input("y2", vec![n.clone()]).unwrap();
        b.add_transient("At", vec![n.clone(), n.clone()]).unwrap();
        b.add_transient("x1", vec![n.clone()]).unwrap();
        b.add_transient("x2", vec![n.clone()]).unwrap();
        b.add_scalar("OUT").unwrap();
        b.matvec("x1", "A", "y1");
        b.transpose("At", "A");
        b.matvec("x2", "At", "y2");
        b.sum_into("OUT", "x1", false);
        b.sum_into("OUT", "x2", true);
        b.build().unwrap()
    }
    fn run_jax(&self, _s: &Sizes, inputs: &HashMap<String, Tensor>) -> GradOutput {
        let ctx = Context::new();
        let a = ctx.input(inputs["A"].clone());
        let y1 = ctx.input(inputs["y1"].clone());
        let y2 = ctx.input(inputs["y2"].clone());
        let x1 = a.matvec(&y1);
        let x2 = a.transpose().matvec(&y2);
        let out = x1.sum().add(&x2.sum());
        let grads = ctx.grad(&out, &[&a, &y1, &y2]);
        GradOutput {
            output: out.value().data()[0],
            gradients: [
                ("A".to_string(), grads[0].clone()),
                ("y1".to_string(), grads[1].clone()),
                ("y2".to_string(), grads[2].clone()),
            ]
            .into_iter()
            .collect(),
        }
    }
    fn jax_loc(&self) -> usize {
        3
    }
}

// ---------------------------------------------------------------------------
// mlp: three dense layers with ReLU activations
// ---------------------------------------------------------------------------

struct Mlp;

impl Kernel for Mlp {
    fn name(&self) -> &'static str {
        "mlp"
    }
    fn category(&self) -> Category {
        Category::Vectorized
    }
    fn sizes(&self, preset: Preset) -> Sizes {
        match preset {
            Preset::Test => Sizes::new(6, 5, 0),
            Preset::Bench => Sizes::new(96, 64, 0),
        }
    }
    fn symbols(&self, s: &Sizes) -> HashMap<String, i64> {
        sym_map(&[("B", s.m), ("H", s.n)])
    }
    fn inputs(&self, s: &Sizes) -> HashMap<String, Tensor> {
        inputs_from(&[
            ("x", vec![s.m, s.n], 23),
            ("W1", vec![s.n, s.n], 24),
            ("W2", vec![s.n, s.n], 25),
            ("W3", vec![s.n, s.n], 26),
        ])
    }
    fn wrt(&self) -> Vec<&'static str> {
        vec!["W1", "W2", "W3"]
    }
    fn build_dace(&self, _s: &Sizes) -> Sdfg {
        let mut b = ProgramBuilder::new("mlp");
        let batch = b.symbol("B");
        let h = b.symbol("H");
        b.add_input("x", vec![batch.clone(), h.clone()]).unwrap();
        for w in ["W1", "W2", "W3"] {
            b.add_input(w, vec![h.clone(), h.clone()]).unwrap();
        }
        for t in ["z1", "h1", "z2", "h2", "z3"] {
            b.add_transient(t, vec![batch.clone(), h.clone()]).unwrap();
        }
        b.add_scalar("OUT").unwrap();
        b.matmul("z1", "x", "W1");
        b.assign("h1", ArrayExpr::a("z1").relu());
        b.matmul("z2", "h1", "W2");
        b.assign("h2", ArrayExpr::a("z2").relu());
        b.matmul("z3", "h2", "W3");
        b.sum_into("OUT", "z3", false);
        b.build().unwrap()
    }
    fn run_jax(&self, _s: &Sizes, inputs: &HashMap<String, Tensor>) -> GradOutput {
        let ctx = Context::new();
        let x = ctx.input(inputs["x"].clone());
        let w1 = ctx.input(inputs["W1"].clone());
        let w2 = ctx.input(inputs["W2"].clone());
        let w3 = ctx.input(inputs["W3"].clone());
        let h1 = x.matmul(&w1).relu();
        let h2 = h1.matmul(&w2).relu();
        let z3 = h2.matmul(&w3);
        let out = z3.sum();
        let grads = ctx.grad(&out, &[&w1, &w2, &w3]);
        GradOutput {
            output: out.value().data()[0],
            gradients: [
                ("W1".to_string(), grads[0].clone()),
                ("W2".to_string(), grads[1].clone()),
                ("W3".to_string(), grads[2].clone()),
            ]
            .into_iter()
            .collect(),
        }
    }
    fn jax_loc(&self) -> usize {
        4
    }
}

// ---------------------------------------------------------------------------
// jacobi1d (vectorized): whole-interior updates inside a time-step loop
// ---------------------------------------------------------------------------

struct Jacobi1d;

impl Kernel for Jacobi1d {
    fn name(&self) -> &'static str {
        "jacobi1d"
    }
    fn category(&self) -> Category {
        Category::Vectorized
    }
    fn sizes(&self, preset: Preset) -> Sizes {
        match preset {
            Preset::Test => Sizes::new(10, 0, 3),
            Preset::Bench => Sizes::new(400, 0, 50),
        }
    }
    fn symbols(&self, s: &Sizes) -> HashMap<String, i64> {
        sym_map(&[("N", s.n), ("TSTEPS", s.tsteps)])
    }
    fn inputs(&self, s: &Sizes) -> HashMap<String, Tensor> {
        inputs_from(&[("A", vec![s.n], 27), ("B", vec![s.n], 28)])
    }
    fn wrt(&self) -> Vec<&'static str> {
        vec!["A", "B"]
    }
    fn build_dace(&self, _s: &Sizes) -> Sdfg {
        use dace_frontend::elem;
        let mut b = ProgramBuilder::new("jacobi1d");
        let n = b.symbol("N");
        let tsteps = b.symbol("TSTEPS");
        b.add_input("A", vec![n.clone()]).unwrap();
        b.add_input("B", vec![n.clone()]).unwrap();
        b.add_scalar("OUT").unwrap();
        let i = SymExpr::sym("i");
        b.for_range("t", 0, tsteps.clone(), |b| {
            b.map_assign(
                "B",
                &[("i", SymExpr::int(1), n.sub(&SymExpr::int(1)))],
                vec![i.clone()],
                elem("A", vec![i.sub(&SymExpr::int(1))])
                    .add(elem("A", vec![i.clone()]))
                    .add(elem("A", vec![i.add_int(1)]))
                    .mul(dace_frontend::lit(0.33333)),
            );
            b.map_assign(
                "A",
                &[("i", SymExpr::int(1), n.sub(&SymExpr::int(1)))],
                vec![i.clone()],
                elem("B", vec![i.sub(&SymExpr::int(1))])
                    .add(elem("B", vec![i.clone()]))
                    .add(elem("B", vec![i.add_int(1)]))
                    .mul(dace_frontend::lit(0.33333)),
            );
        });
        b.sum_into("OUT", "A", false);
        b.build().unwrap()
    }
    fn run_jax(&self, s: &Sizes, inputs: &HashMap<String, Tensor>) -> GradOutput {
        let ctx = Context::new();
        let n = s.n;
        let a0 = ctx.input(inputs["A"].clone());
        let b0 = ctx.input(inputs["B"].clone());
        let (a, _b) = ctx.fori_loop(0, s.tsteps as i64, (a0.clone(), b0.clone()), |_, (a, b)| {
            let left = a.dynamic_slice(&[0], &[n - 2]);
            let mid = a.dynamic_slice(&[1], &[n - 2]);
            let right = a.dynamic_slice(&[2], &[n - 2]);
            let interior = left.add(&mid).add(&right).scale(0.33333);
            let b = b.dynamic_update_slice(&interior, &[1]);
            let left = b.dynamic_slice(&[0], &[n - 2]);
            let mid = b.dynamic_slice(&[1], &[n - 2]);
            let right = b.dynamic_slice(&[2], &[n - 2]);
            let interior = left.add(&mid).add(&right).scale(0.33333);
            let a = a.dynamic_update_slice(&interior, &[1]);
            (a, b)
        });
        let out = a.sum();
        let grads = ctx.grad(&out, &[&a0, &b0]);
        GradOutput {
            output: out.value().data()[0],
            gradients: [
                ("A".to_string(), grads[0].clone()),
                ("B".to_string(), grads[1].clone()),
            ]
            .into_iter()
            .collect(),
        }
    }
    fn jax_loc(&self) -> usize {
        11
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectorized_registry_is_populated() {
        let ks = kernels();
        assert_eq!(ks.len(), 9);
        for k in &ks {
            assert_eq!(k.category(), Category::Vectorized);
            let sizes = k.sizes(Preset::Test);
            let sdfg = k.build_dace(&sizes);
            sdfg.validate_strict().unwrap();
            assert!(sdfg.arrays.contains_key("OUT"));
        }
    }
}
