//! Helpers for running kernels through the DaCe AD pipeline.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use dace_ad::{AdOptions, GradientEngine};
use dace_tensor::Tensor;

use crate::{GradOutput, Kernel, Sizes};

/// Run the DaCe AD side of a kernel (store-all strategy) and return the
/// gradients of its `wrt` inputs.
pub fn run_dace_gradients(
    kernel: &dyn Kernel,
    sizes: &Sizes,
    inputs: &HashMap<String, Tensor>,
) -> Result<GradOutput, String> {
    let sdfg = kernel.build_dace(sizes);
    let symbols = kernel.symbols(sizes);
    let wrt = kernel.wrt();
    let mut engine = GradientEngine::new(&sdfg, "OUT", &wrt, &symbols, &AdOptions::default())
        .map_err(|e| e.to_string())?;
    let result = engine.run(inputs).map_err(|e| e.to_string())?;
    Ok(GradOutput {
        output: result.output_value,
        gradients: result.gradients.into_iter().collect(),
    })
}

/// Timing measurement for one side of a kernel.
#[derive(Clone, Debug)]
pub struct Timing {
    /// Wall-clock time of the gradient computation (forward + backward).
    pub elapsed: Duration,
    /// Scalar output (to check both sides computed the same thing).
    pub output: f64,
}

/// Time the DaCe AD gradient computation (engine construction excluded, the
/// paper excludes compilation from its measurements via a warm-up run).
pub fn time_dace(
    kernel: &dyn Kernel,
    sizes: &Sizes,
    inputs: &HashMap<String, Tensor>,
    repetitions: usize,
) -> Result<Timing, String> {
    let sdfg = kernel.build_dace(sizes);
    let symbols = kernel.symbols(sizes);
    let wrt = kernel.wrt();
    let mut engine = GradientEngine::new(&sdfg, "OUT", &wrt, &symbols, &AdOptions::default())
        .map_err(|e| e.to_string())?;
    // Warm-up run (mirrors the paper's methodology).
    let warm = engine.run(inputs).map_err(|e| e.to_string())?;
    let mut best = Duration::MAX;
    for _ in 0..repetitions.max(1) {
        let start = Instant::now();
        let _ = engine.run(inputs).map_err(|e| e.to_string())?;
        best = best.min(start.elapsed());
    }
    Ok(Timing {
        elapsed: best,
        output: warm.output_value,
    })
}

/// Time one full finite-difference validation sweep of a kernel: the central
/// FD gradient of `OUT` w.r.t. the kernel's first `wrt` input (`2 × len`
/// forward executions).  With the compile-once API the whole sweep performs
/// exactly one forward lowering, which is what the `fd_validation` baseline
/// entry guards.
pub fn time_fd_validation(
    kernel: &dyn Kernel,
    sizes: &Sizes,
    inputs: &HashMap<String, Tensor>,
    repetitions: usize,
) -> Result<Timing, String> {
    let sdfg = kernel.build_dace(sizes);
    let symbols = kernel.symbols(sizes);
    let wrt = *kernel
        .wrt()
        .first()
        .ok_or_else(|| "kernel has no differentiable inputs".to_string())?;
    let mut best = Duration::MAX;
    let mut output = 0.0;
    for _ in 0..repetitions.max(1) {
        let start = Instant::now();
        let grad =
            dace_ad::engine::finite_difference_gradient(&sdfg, "OUT", wrt, &symbols, inputs, 1e-6)
                .map_err(|e| e.to_string())?;
        best = best.min(start.elapsed());
        output = grad.sum();
    }
    Ok(Timing {
        elapsed: best,
        output,
    })
}

/// Time the jax-rs gradient computation.
pub fn time_jax(
    kernel: &dyn Kernel,
    sizes: &Sizes,
    inputs: &HashMap<String, Tensor>,
    repetitions: usize,
) -> Timing {
    // Warm-up.
    let warm = kernel.run_jax(sizes, inputs);
    let mut best = Duration::MAX;
    for _ in 0..repetitions.max(1) {
        let start = Instant::now();
        let _ = kernel.run_jax(sizes, inputs);
        best = best.min(start.elapsed());
    }
    Timing {
        elapsed: best,
        output: warm.output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Preset;

    #[test]
    fn timing_runs_for_a_small_kernel() {
        let kernel = crate::kernel_by_name("atax").unwrap();
        let sizes = kernel.sizes(Preset::Test);
        let inputs = kernel.inputs(&sizes);
        let d = time_dace(kernel.as_ref(), &sizes, &inputs, 1).unwrap();
        let j = time_jax(kernel.as_ref(), &sizes, &inputs, 1);
        assert!((d.output - j.output).abs() < 1e-6 * (1.0 + j.output.abs()));
        assert!(d.elapsed.as_nanos() > 0 && j.elapsed.as_nanos() > 0);
    }
}
