//! Helpers for running kernels through the DaCe AD pipeline.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use dace_ad::{AdOptions, GradientEngine};
use dace_tensor::Tensor;

use crate::{GradOutput, Kernel, Sizes};

/// Run the DaCe AD side of a kernel (store-all strategy) and return the
/// gradients of its `wrt` inputs.
pub fn run_dace_gradients(
    kernel: &dyn Kernel,
    sizes: &Sizes,
    inputs: &HashMap<String, Tensor>,
) -> Result<GradOutput, String> {
    let sdfg = kernel.build_dace(sizes);
    let symbols = kernel.symbols(sizes);
    let wrt = kernel.wrt();
    let mut engine = GradientEngine::new(&sdfg, "OUT", &wrt, &symbols, &AdOptions::default())
        .map_err(|e| e.to_string())?;
    let result = engine.run(inputs).map_err(|e| e.to_string())?;
    Ok(GradOutput {
        output: result.output_value,
        gradients: result.gradients.into_iter().collect(),
    })
}

/// Timing measurement for one side of a kernel.
#[derive(Clone, Debug)]
pub struct Timing {
    /// Wall-clock time of the gradient computation (forward + backward).
    pub elapsed: Duration,
    /// Scalar output (to check both sides computed the same thing).
    pub output: f64,
}

/// Time the DaCe AD gradient computation (engine construction excluded, the
/// paper excludes compilation from its measurements via a warm-up run).
pub fn time_dace(
    kernel: &dyn Kernel,
    sizes: &Sizes,
    inputs: &HashMap<String, Tensor>,
    repetitions: usize,
) -> Result<Timing, String> {
    let sdfg = kernel.build_dace(sizes);
    let symbols = kernel.symbols(sizes);
    let wrt = kernel.wrt();
    let mut engine = GradientEngine::new(&sdfg, "OUT", &wrt, &symbols, &AdOptions::default())
        .map_err(|e| e.to_string())?;
    // Warm-up run (mirrors the paper's methodology).
    let warm = engine.run(inputs).map_err(|e| e.to_string())?;
    let mut best = Duration::MAX;
    for _ in 0..repetitions.max(1) {
        let start = Instant::now();
        let _ = engine.run(inputs).map_err(|e| e.to_string())?;
        best = best.min(start.elapsed());
    }
    Ok(Timing {
        elapsed: best,
        output: warm.output_value,
    })
}

/// Time one full finite-difference validation sweep of a kernel: the central
/// FD gradient of `OUT` w.r.t. the kernel's first `wrt` input (`2 × len`
/// forward executions).  With the compile-once API the whole sweep performs
/// exactly one forward lowering, which is what the `fd_validation` baseline
/// entry guards.
pub fn time_fd_validation(
    kernel: &dyn Kernel,
    sizes: &Sizes,
    inputs: &HashMap<String, Tensor>,
    repetitions: usize,
) -> Result<Timing, String> {
    let sdfg = kernel.build_dace(sizes);
    let symbols = kernel.symbols(sizes);
    let wrt = *kernel
        .wrt()
        .first()
        .ok_or_else(|| "kernel has no differentiable inputs".to_string())?;
    let mut best = Duration::MAX;
    let mut output = 0.0;
    for _ in 0..repetitions.max(1) {
        let start = Instant::now();
        let grad =
            dace_ad::engine::finite_difference_gradient(&sdfg, "OUT", wrt, &symbols, inputs, 1e-6)
                .map_err(|e| e.to_string())?;
        best = best.min(start.elapsed());
        output = grad.sum();
    }
    Ok(Timing {
        elapsed: best,
        output,
    })
}

/// Serial-vs-batched timing of one kernel's gradient over a batch of
/// distinct input sets (see [`time_batch`]).
#[derive(Clone, Debug)]
pub struct BatchTiming {
    /// Number of input sets in the batch.
    pub items: usize,
    /// Effective fan-out width of the batched runs.
    pub workers: usize,
    /// Best wall-clock time of serving the whole batch through a serial
    /// single-session loop (`GradientEngine::run` per item).
    pub serial: Duration,
    /// Best wall-clock time of serving the same batch through
    /// `GradientEngine::run_batch`.
    pub batched: Duration,
    /// Serial items/sec.
    pub serial_items_per_sec: f64,
    /// Batched items/sec.
    pub batched_items_per_sec: f64,
    /// `serial / batched` — the batched-serving speedup.
    pub speedup: f64,
}

/// Build `batch` distinct input sets for a kernel: the seeded base inputs,
/// shifted by a small per-item constant so every request carries different
/// data (as concurrent users would) while staying numerically tame.
pub fn batch_inputs(
    kernel: &dyn Kernel,
    sizes: &Sizes,
    batch: usize,
) -> Vec<HashMap<String, Tensor>> {
    let base = kernel.inputs(sizes);
    (0..batch)
        .map(|i| {
            base.iter()
                .map(|(name, tensor)| (name.clone(), tensor.add_scalar(i as f64 * 1e-3)))
                .collect()
        })
        .collect()
}

/// Time batched gradient serving against the serial single-session loop on
/// the same batch: one engine, one compiled gradient program, `batch`
/// distinct input sets.  Both paths are warmed first (the paper's
/// methodology excludes compilation and cold-cache effects), then each is
/// measured best-of-`repetitions`.  `workers` caps the batched fan-out
/// (0 = the worker pool's full width).
pub fn time_batch(
    kernel: &dyn Kernel,
    sizes: &Sizes,
    batch: usize,
    repetitions: usize,
    workers: usize,
) -> Result<BatchTiming, String> {
    let sdfg = kernel.build_dace(sizes);
    let symbols = kernel.symbols(sizes);
    let wrt = kernel.wrt();
    let mut engine = GradientEngine::new(&sdfg, "OUT", &wrt, &symbols, &AdOptions::default())
        .map_err(|e| e.to_string())?;
    engine.set_batch_workers(workers);
    let items = batch_inputs(kernel, sizes, batch);

    // Warm both paths: the serial session and the batch driver's pool.
    engine.run(&items[0]).map_err(|e| e.to_string())?;
    engine.run_batch(&items).map_err(|e| e.to_string())?;

    let mut serial = Duration::MAX;
    let mut batched = Duration::MAX;
    let mut effective_workers = 1;
    for _ in 0..repetitions.max(1) {
        let start = Instant::now();
        for item in &items {
            engine.run(item).map_err(|e| e.to_string())?;
        }
        serial = serial.min(start.elapsed());

        let start = Instant::now();
        let out = engine.run_batch(&items).map_err(|e| e.to_string())?;
        batched = batched.min(start.elapsed());
        effective_workers = out.batch.workers;
    }
    let per_sec = |d: Duration| batch as f64 / d.as_secs_f64().max(1e-12);
    Ok(BatchTiming {
        items: batch,
        workers: effective_workers,
        serial,
        batched,
        serial_items_per_sec: per_sec(serial),
        batched_items_per_sec: per_sec(batched),
        speedup: serial.as_secs_f64() / batched.as_secs_f64().max(1e-12),
    })
}

/// Time the jax-rs gradient computation.
pub fn time_jax(
    kernel: &dyn Kernel,
    sizes: &Sizes,
    inputs: &HashMap<String, Tensor>,
    repetitions: usize,
) -> Timing {
    // Warm-up.
    let warm = kernel.run_jax(sizes, inputs);
    let mut best = Duration::MAX;
    for _ in 0..repetitions.max(1) {
        let start = Instant::now();
        let _ = kernel.run_jax(sizes, inputs);
        best = best.min(start.elapsed());
    }
    Timing {
        elapsed: best,
        output: warm.output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Preset;

    #[test]
    fn batch_timing_runs_for_a_small_kernel() {
        let kernel = crate::kernel_by_name("atax").unwrap();
        let sizes = kernel.sizes(Preset::Test);
        let t = time_batch(kernel.as_ref(), &sizes, 4, 1, 2).unwrap();
        assert_eq!(t.items, 4);
        assert!(t.workers >= 1 && t.workers <= 2);
        assert!(t.serial_items_per_sec > 0.0 && t.batched_items_per_sec > 0.0);
        assert!(t.speedup > 0.0);
    }

    #[test]
    fn timing_runs_for_a_small_kernel() {
        let kernel = crate::kernel_by_name("atax").unwrap();
        let sizes = kernel.sizes(Preset::Test);
        let inputs = kernel.inputs(&sizes);
        let d = time_dace(kernel.as_ref(), &sizes, &inputs, 1).unwrap();
        let j = time_jax(kernel.as_ref(), &sizes, &inputs, 1);
        assert!((d.output - j.output).abs() < 1e-6 * (1.0 + j.output.abs()));
        assert!(d.elapsed.as_nanos() > 0 && j.elapsed.as_nanos() > 0);
    }
}
