//! Helpers for running kernels through the DaCe AD pipeline.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dace_ad::{
    AdOptions, EngineError, FaultPlan, Gateway, GatewayOptions, GatewayStats, GradientEngine,
    ServeError, ServeOptions, SubmitOptions, TenantConfig,
};
use dace_tensor::Tensor;

use crate::{GradOutput, Kernel, Preset, Sizes};

/// Run the DaCe AD side of a kernel (store-all strategy) and return the
/// gradients of its `wrt` inputs.
pub fn run_dace_gradients(
    kernel: &dyn Kernel,
    sizes: &Sizes,
    inputs: &HashMap<String, Tensor>,
) -> Result<GradOutput, String> {
    let sdfg = kernel.build_dace(sizes);
    let symbols = kernel.symbols(sizes);
    let wrt = kernel.wrt();
    let mut engine = GradientEngine::new(&sdfg, "OUT", &wrt, &symbols, &AdOptions::default())
        .map_err(|e| e.to_string())?;
    let result = engine.run(inputs).map_err(|e| e.to_string())?;
    Ok(GradOutput {
        output: result.output_value,
        gradients: result.gradients.into_iter().collect(),
    })
}

/// Timing measurement for one side of a kernel.
#[derive(Clone, Debug)]
pub struct Timing {
    /// Wall-clock time of the gradient computation (forward + backward).
    pub elapsed: Duration,
    /// Scalar output (to check both sides computed the same thing).
    pub output: f64,
}

/// Time the DaCe AD gradient computation (engine construction excluded, the
/// paper excludes compilation from its measurements via a warm-up run).
pub fn time_dace(
    kernel: &dyn Kernel,
    sizes: &Sizes,
    inputs: &HashMap<String, Tensor>,
    repetitions: usize,
) -> Result<Timing, String> {
    let sdfg = kernel.build_dace(sizes);
    let symbols = kernel.symbols(sizes);
    let wrt = kernel.wrt();
    let mut engine = GradientEngine::new(&sdfg, "OUT", &wrt, &symbols, &AdOptions::default())
        .map_err(|e| e.to_string())?;
    // Warm-up run (mirrors the paper's methodology).
    let warm = engine.run(inputs).map_err(|e| e.to_string())?;
    let mut best = Duration::MAX;
    for _ in 0..repetitions.max(1) {
        let start = Instant::now();
        let _ = engine.run(inputs).map_err(|e| e.to_string())?;
        best = best.min(start.elapsed());
    }
    Ok(Timing {
        elapsed: best,
        output: warm.output_value,
    })
}

/// Time one full finite-difference validation sweep of a kernel: the central
/// FD gradient of `OUT` w.r.t. the kernel's first `wrt` input (`2 × len`
/// forward executions).  With the compile-once API the whole sweep performs
/// exactly one forward lowering, which is what the `fd_validation` baseline
/// entry guards.
pub fn time_fd_validation(
    kernel: &dyn Kernel,
    sizes: &Sizes,
    inputs: &HashMap<String, Tensor>,
    repetitions: usize,
) -> Result<Timing, String> {
    let sdfg = kernel.build_dace(sizes);
    let symbols = kernel.symbols(sizes);
    let wrt = *kernel
        .wrt()
        .first()
        .ok_or_else(|| "kernel has no differentiable inputs".to_string())?;
    let mut best = Duration::MAX;
    let mut output = 0.0;
    for _ in 0..repetitions.max(1) {
        let start = Instant::now();
        let grad =
            dace_ad::engine::finite_difference_gradient(&sdfg, "OUT", wrt, &symbols, inputs, 1e-6)
                .map_err(|e| e.to_string())?;
        best = best.min(start.elapsed());
        output = grad.sum();
    }
    Ok(Timing {
        elapsed: best,
        output,
    })
}

/// Serial-vs-batched timing of one kernel's gradient over a batch of
/// distinct input sets (see [`time_batch`]).
#[derive(Clone, Debug)]
pub struct BatchTiming {
    /// Number of input sets in the batch.
    pub items: usize,
    /// Effective fan-out width of the batched runs.
    pub workers: usize,
    /// Best wall-clock time of serving the whole batch through a serial
    /// single-session loop (`GradientEngine::run` per item).
    pub serial: Duration,
    /// Best wall-clock time of serving the same batch through
    /// `GradientEngine::run_batch`.
    pub batched: Duration,
    /// Serial items/sec.
    pub serial_items_per_sec: f64,
    /// Batched items/sec.
    pub batched_items_per_sec: f64,
    /// `serial / batched` — the batched-serving speedup.
    pub speedup: f64,
}

/// Build `batch` distinct input sets for a kernel: the seeded base inputs,
/// shifted by a small per-item constant so every request carries different
/// data (as concurrent users would) while staying numerically tame.
pub fn batch_inputs(
    kernel: &dyn Kernel,
    sizes: &Sizes,
    batch: usize,
) -> Vec<HashMap<String, Tensor>> {
    let base = kernel.inputs(sizes);
    (0..batch)
        .map(|i| {
            base.iter()
                .map(|(name, tensor)| (name.clone(), tensor.add_scalar(i as f64 * 1e-3)))
                .collect()
        })
        .collect()
}

/// Time batched gradient serving against the serial single-session loop on
/// the same batch: one engine, one compiled gradient program, `batch`
/// distinct input sets.  Both paths are warmed first (the paper's
/// methodology excludes compilation and cold-cache effects), then each is
/// measured best-of-`repetitions`.  `workers` caps the batched fan-out
/// (0 = the worker pool's full width).
pub fn time_batch(
    kernel: &dyn Kernel,
    sizes: &Sizes,
    batch: usize,
    repetitions: usize,
    workers: usize,
) -> Result<BatchTiming, String> {
    let sdfg = kernel.build_dace(sizes);
    let symbols = kernel.symbols(sizes);
    let wrt = kernel.wrt();
    let mut engine = GradientEngine::new(&sdfg, "OUT", &wrt, &symbols, &AdOptions::default())
        .map_err(|e| e.to_string())?;
    engine.set_batch_workers(workers);
    let items = batch_inputs(kernel, sizes, batch);

    // Warm both paths: the serial session and the batch driver's pool.
    engine.run(&items[0]).map_err(|e| e.to_string())?;
    engine.run_batch(&items).map_err(|e| e.to_string())?;

    let mut serial = Duration::MAX;
    let mut batched = Duration::MAX;
    let mut effective_workers = 1;
    for _ in 0..repetitions.max(1) {
        let start = Instant::now();
        for item in &items {
            engine.run(item).map_err(|e| e.to_string())?;
        }
        serial = serial.min(start.elapsed());

        let start = Instant::now();
        let out = engine.run_batch(&items).map_err(|e| e.to_string())?;
        batched = batched.min(start.elapsed());
        effective_workers = out.batch.workers;
    }
    let per_sec = |d: Duration| batch as f64 / d.as_secs_f64().max(1e-12);
    Ok(BatchTiming {
        items: batch,
        workers: effective_workers,
        serial,
        batched,
        serial_items_per_sec: per_sec(serial),
        batched_items_per_sec: per_sec(batched),
        speedup: serial.as_secs_f64() / batched.as_secs_f64().max(1e-12),
    })
}

/// Result of one open-loop serving measurement (see [`time_serve`]).
#[derive(Clone, Debug)]
pub struct ServeTiming {
    /// Requests submitted per repetition.
    pub requests: usize,
    /// Requests that completed with a gradient result (best repetition).
    pub completed: usize,
    /// Requests rejected because their deadline passed before dispatch.
    pub expired: usize,
    /// Requests that failed with a runtime error or panic.
    pub failed: usize,
    /// Requests neither completed, expired nor failed — always 0 unless
    /// the serving layer lost a handle (which the CI smoke gate asserts
    /// never happens).
    pub lost: usize,
    /// First-submit-to-last-completion wall clock of the best repetition.
    pub elapsed: Duration,
    /// `elapsed / requests` in milliseconds — the regression-gated figure
    /// of the `serve_latency` baseline row.
    pub per_request_ms: f64,
    /// Completed requests per second (`completed / elapsed`).
    pub achieved_rps: f64,
    /// Median submit-to-completion latency (ms) over completed requests.
    pub p50_ms: f64,
    /// 95th-percentile submit-to-completion latency (ms).
    pub p95_ms: f64,
    /// Worst submit-to-completion latency (ms).
    pub max_ms: f64,
    /// Largest number of requests one dispatch coalesced (server lifetime).
    pub largest_batch: usize,
    /// Requests refused at admission over the server lifetime (today only
    /// post-shutdown submissions) — surfaced so overload shedding is
    /// visible in `npbench --serve` output.
    pub rejected: u64,
    /// Raw per-request latencies (ms) of the best repetition, for callers
    /// that aggregate percentiles across kernels (`record_baseline`).
    pub latencies_ms: Vec<f64>,
}

/// Build [`ServeOptions`] from CLI-style knobs (shared by the `npbench
/// --serve` mode and the `serve_latency` baseline row, so both measure the
/// same configuration).
pub fn serve_options(max_batch: usize, max_wait_ms: f64, workers: usize) -> ServeOptions {
    ServeOptions {
        max_batch,
        max_wait: Duration::from_secs_f64(max_wait_ms.max(0.0) / 1e3),
        workers,
    }
}

/// Nearest-rank percentile over an ascending-sorted slice (`q` in [0, 1]);
/// `0.0` on an empty slice.  Shared by [`time_serve`] and the
/// `serve_latency` baseline row so both report the same statistic.
pub fn percentile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Drive one kernel's gradient server with an open-loop load: `requests`
/// individually submitted requests, paced at `rps` submissions per second
/// (`rps <= 0` submits as fast as possible), then wait for every handle.
///
/// Open loop means the submission schedule does not adapt to completion
/// latency — exactly the arrival model of independent users — so queueing
/// delay shows up in the measured latencies instead of being hidden by
/// back-pressure.  The engine and the server's session pool are warmed
/// first (one unmeasured round), then the load runs `repetitions` times and
/// the repetition with the best per-request time is reported.
pub fn time_serve(
    kernel: &dyn Kernel,
    sizes: &Sizes,
    requests: usize,
    rps: f64,
    deadline: Option<Duration>,
    options: ServeOptions,
    repetitions: usize,
) -> Result<ServeTiming, String> {
    if requests == 0 {
        return Err("serve measurement needs at least one request".to_string());
    }
    let sdfg = kernel.build_dace(sizes);
    let symbols = kernel.symbols(sizes);
    let wrt = kernel.wrt();
    let mut engine = GradientEngine::new(&sdfg, "OUT", &wrt, &symbols, &AdOptions::default())
        .map_err(|e| e.to_string())?;
    let server = engine.serve_with_options(options.clone());
    let items = batch_inputs(kernel, sizes, requests);

    // Warm-up round (unmeasured): fills the session pool and the slab
    // recycling pools, mirroring the paper's warm-measurement methodology.
    server.serve_driver().warm(options.max_batch.min(requests));
    for result in items.iter().map(|i| server.submit(i)) {
        result
            .map_err(|e| e.to_string())?
            .wait()
            .map_err(|e| e.to_string())?;
    }

    let mut best: Option<ServeTiming> = None;
    for _ in 0..repetitions.max(1) {
        let start = Instant::now();
        let mut handles = Vec::with_capacity(requests);
        for (i, inputs) in items.iter().enumerate() {
            if rps > 0.0 {
                let target = start + Duration::from_secs_f64(i as f64 / rps);
                let now = Instant::now();
                if now < target {
                    std::thread::sleep(target - now);
                }
            }
            let handle = match deadline {
                Some(d) => server.submit_with_deadline(inputs, d),
                None => server.submit(inputs),
            };
            handles.push(handle.map_err(|e| e.to_string())?);
        }
        let mut latencies_ms = Vec::with_capacity(requests);
        let (mut completed, mut expired, mut failed) = (0usize, 0usize, 0usize);
        for handle in handles {
            match handle.wait() {
                Ok(served) => {
                    completed += 1;
                    latencies_ms.push(served.latency.as_secs_f64() * 1e3);
                }
                Err(dace_ad::EngineError::Serve(dace_ad::ServeError::DeadlineExceeded {
                    ..
                })) => expired += 1,
                Err(_) => failed += 1,
            }
        }
        let elapsed = start.elapsed();
        latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let timing = ServeTiming {
            requests,
            completed,
            expired,
            failed,
            lost: requests - completed - expired - failed,
            elapsed,
            per_request_ms: elapsed.as_secs_f64() * 1e3 / requests as f64,
            achieved_rps: completed as f64 / elapsed.as_secs_f64().max(1e-12),
            p50_ms: percentile_ms(&latencies_ms, 0.50),
            p95_ms: percentile_ms(&latencies_ms, 0.95),
            max_ms: latencies_ms.last().copied().unwrap_or(0.0),
            largest_batch: server.stats().largest_batch,
            rejected: server.stats().rejected,
            latencies_ms,
        };
        let better = best
            .as_ref()
            .map(|b| timing.per_request_ms < b.per_request_ms)
            .unwrap_or(true);
        if better {
            best = Some(timing);
        }
    }
    Ok(best.expect("at least one repetition ran"))
}

/// Load shape of one [`time_gateway`] chaos run.
#[derive(Clone, Debug)]
pub struct GatewayLoad {
    /// Concurrent client threads (clamped to >= 1).
    pub clients: usize,
    /// Requests each client submits (round-robin across tenants).
    pub requests_per_client: usize,
    /// Deadline attached to every third request (the rest are unbounded).
    pub deadline: Option<Duration>,
    /// Per-tenant admission-queue capacity.
    pub queue_capacity: usize,
    /// Retry budget for idempotent requests hit by infrastructure faults.
    pub retry_budget: u32,
    /// Admission bound per dispatch.
    pub max_batch: usize,
    /// Admission linger window.
    pub max_wait: Duration,
    /// Inject a dispatch panic on every k-th dispatch of every tenant.
    pub inject_panic_every: Option<u64>,
    /// Inject this much artificial latency into every dispatched item.
    pub inject_delay: Duration,
    /// Concurrent plan hot-swaps performed while the load runs.
    pub reloads: usize,
}

impl Default for GatewayLoad {
    fn default() -> Self {
        GatewayLoad {
            clients: 6,
            requests_per_client: 16,
            deadline: None,
            queue_capacity: 32,
            retry_budget: 2,
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            inject_panic_every: None,
            inject_delay: Duration::ZERO,
            reloads: 0,
        }
    }
}

/// Outcome of one [`time_gateway`] chaos run.  The exactly-once contract
/// shows up as `lost == 0`; bit-exactness as `mismatched == 0`; snapshot
/// coherence as `torn_snapshots == 0` — the `npbench --gateway` smoke gate
/// exits non-zero if any of them is violated.
#[derive(Clone, Debug)]
pub struct GatewayTiming {
    /// Registered tenants (one per selected kernel).
    pub tenants: usize,
    /// Client threads that generated the load.
    pub clients: usize,
    /// Total requests submitted across all clients.
    pub submitted: usize,
    /// Requests that completed with a gradient bit-identical to the serial
    /// reference.
    pub completed: usize,
    /// Requests shed with a typed `Overloaded`/`Degraded` rejection.
    pub shed: usize,
    /// Requests whose (intentionally tight) deadline expired.
    pub expired: usize,
    /// Requests that resolved with an infrastructure or execution error
    /// (expected under fault injection once the retry budget is spent).
    pub failed: usize,
    /// Handles that never resolved — always 0 unless the gateway broke its
    /// exactly-once contract.
    pub lost: usize,
    /// Completed requests whose outputs were NOT bit-identical to the
    /// serial reference — always 0 unless batching/reload tore a result.
    pub mismatched: usize,
    /// Stats snapshots that violated counter conservation.
    pub torn_snapshots: u64,
    /// Stats snapshots the sampler thread took while the load ran.
    pub samples: u64,
    /// Plan hot-swaps that completed during the storm.
    pub reloads: usize,
    /// First-submit-to-last-resolution wall clock.
    pub elapsed: Duration,
    /// Completed requests per second.
    pub achieved_rps: f64,
    /// Whether the final quiescent snapshot conserves.
    pub conserved: bool,
    /// Final per-tenant gateway statistics (for per-tenant reporting).
    pub stats: GatewayStats,
}

/// Per-client tally of request fates (merged into [`GatewayTiming`]).
#[derive(Clone, Copy, Debug, Default)]
struct ClientTally {
    completed: usize,
    shed: usize,
    expired: usize,
    failed: usize,
    lost: usize,
    mismatched: usize,
}

/// Drive one shared multi-tenant [`Gateway`] with a concurrent chaos load:
/// every selected kernel registers as a tenant, `load.clients` threads
/// submit round-robin across tenants (every third request with a deadline
/// when one is configured), faults are injected per `load`, and — when
/// `load.reloads > 0` — tenants are hot-swapped while the storm runs.
///
/// A sampler thread hammers `Gateway::stats` for the whole run and counts
/// snapshots that violate counter conservation; every completed gradient is
/// compared bit-for-bit against a serial `GradientEngine::run` reference
/// computed before the storm.
pub fn time_gateway(
    kernels: &[Box<dyn Kernel>],
    preset: Preset,
    load: &GatewayLoad,
) -> Result<GatewayTiming, String> {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    if kernels.is_empty() {
        return Err("gateway measurement needs at least one kernel".to_string());
    }
    let clients = load.clients.max(1);
    let gateway = Arc::new(Gateway::new(GatewayOptions {
        max_batch: load.max_batch,
        max_wait: load.max_wait,
        queue_capacity: load.queue_capacity,
        retry_budget: load.retry_budget,
        ..GatewayOptions::default()
    }));

    // Distinct input variants per tenant, with serial references computed
    // up front so completed results can be verified bit-for-bit.
    const VARIANTS: usize = 4;
    struct Tenant {
        client: dace_ad::GatewayGradientClient,
        inputs: Vec<HashMap<String, Tensor>>,
        reference: Vec<dace_ad::GradientResult>,
    }
    let mut tenants = Vec::with_capacity(kernels.len());
    let mut engines = Vec::with_capacity(kernels.len());
    for kernel in kernels {
        let sizes = kernel.sizes(preset);
        let sdfg = kernel.build_dace(&sizes);
        let symbols = kernel.symbols(&sizes);
        let wrt = kernel.wrt();
        let mut engine = GradientEngine::new(&sdfg, "OUT", &wrt, &symbols, &AdOptions::default())
            .map_err(|e| format!("{}: {e}", kernel.name()))?;
        let inputs = batch_inputs(kernel.as_ref(), &sizes, VARIANTS);
        let reference = inputs
            .iter()
            .map(|i| engine.run(i))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| format!("{}: {e}", kernel.name()))?;
        let client = engine
            .register_with(&gateway, kernel.name(), TenantConfig::default())
            .map_err(|e| format!("{}: {e}", kernel.name()))?;
        if load.inject_panic_every.is_some() || load.inject_delay > Duration::ZERO {
            gateway
                .inject_faults(
                    kernel.name(),
                    FaultPlan {
                        panic_every: load.inject_panic_every,
                        delay: load.inject_delay,
                        ..FaultPlan::default()
                    },
                )
                .map_err(|e| e.to_string())?;
        }
        tenants.push(Tenant {
            client,
            inputs,
            reference,
        });
        engines.push((kernel.name().to_string(), engine));
    }
    let tenants = &tenants;

    let done = AtomicBool::new(false);
    let torn = AtomicU64::new(0);
    let samples = AtomicU64::new(0);
    let per_client = load.requests_per_client;
    let start = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let sampler = {
            let gateway = Arc::clone(&gateway);
            let (done, torn, samples) = (&done, &torn, &samples);
            scope.spawn(move || {
                while !done.load(Ordering::Acquire) {
                    if !gateway.stats().conserves() {
                        torn.fetch_add(1, Ordering::Relaxed);
                    }
                    samples.fetch_add(1, Ordering::Relaxed);
                }
            })
        };
        // Hot-swap tenants round-robin while the clients hammer them: the
        // drain guarantee says no handle may be lost across a swap.
        let reloader = (load.reloads > 0).then(|| {
            let gateway = Arc::clone(&gateway);
            let reloads = load.reloads;
            scope.spawn(move || {
                for r in 0..reloads {
                    std::thread::sleep(Duration::from_millis(3));
                    let (name, engine) = &engines[r % engines.len()];
                    engine
                        .reload_into(&gateway, name)
                        .expect("reload of a registered tenant");
                }
                engines
            })
        });
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut tally = ClientTally::default();
                    for i in 0..per_client {
                        let tenant = &tenants[(c + i) % tenants.len()];
                        let v = (c * per_client + i) % tenant.inputs.len();
                        let deadline = if i % 3 == 0 { load.deadline } else { None };
                        let handle = tenant
                            .client
                            .submit_with(
                                &tenant.inputs[v],
                                SubmitOptions {
                                    deadline,
                                    idempotent: true,
                                },
                            )
                            .expect("submission to a registered tenant");
                        match handle.wait_timeout(Duration::from_secs(30)) {
                            None => tally.lost += 1,
                            Some(Ok(served)) => {
                                let expected = &tenant.reference[v];
                                let exact = served.result.output_value.to_bits()
                                    == expected.output_value.to_bits()
                                    && expected.gradients.iter().all(|(name, tensor)| {
                                        served.result.gradients.get(name).is_some_and(|got| {
                                            got.data().len() == tensor.data().len()
                                                && got
                                                    .data()
                                                    .iter()
                                                    .zip(tensor.data())
                                                    .all(|(a, b)| a.to_bits() == b.to_bits())
                                        })
                                    });
                                if exact {
                                    tally.completed += 1;
                                } else {
                                    tally.mismatched += 1;
                                }
                            }
                            Some(Err(EngineError::Serve(
                                ServeError::Overloaded { .. } | ServeError::Degraded { .. },
                            ))) => tally.shed += 1,
                            Some(Err(EngineError::Serve(ServeError::DeadlineExceeded {
                                ..
                            }))) => tally.expired += 1,
                            Some(Err(_)) => tally.failed += 1,
                        }
                    }
                    tally
                })
            })
            .collect();
        let tallies = workers
            .into_iter()
            .map(|w| w.join().expect("client thread panicked"))
            .collect();
        if let Some(reloader) = reloader {
            drop(reloader.join().expect("reloader thread panicked"));
        }
        done.store(true, Ordering::Release);
        sampler.join().expect("sampler thread panicked");
        tallies
    });
    let elapsed = start.elapsed();

    let stats = gateway.stats();
    let sum = |f: fn(&ClientTally) -> usize| tallies.iter().map(f).sum::<usize>();
    let completed = sum(|t| t.completed);
    Ok(GatewayTiming {
        tenants: tenants.len(),
        clients,
        submitted: clients * per_client,
        completed,
        shed: sum(|t| t.shed),
        expired: sum(|t| t.expired),
        failed: sum(|t| t.failed),
        lost: sum(|t| t.lost),
        mismatched: sum(|t| t.mismatched),
        torn_snapshots: torn.load(std::sync::atomic::Ordering::Relaxed),
        samples: samples.load(std::sync::atomic::Ordering::Relaxed),
        reloads: load.reloads,
        elapsed,
        achieved_rps: completed as f64 / elapsed.as_secs_f64().max(1e-12),
        conserved: stats.conserves(),
        stats,
    })
}

/// Time the jax-rs gradient computation.
pub fn time_jax(
    kernel: &dyn Kernel,
    sizes: &Sizes,
    inputs: &HashMap<String, Tensor>,
    repetitions: usize,
) -> Timing {
    // Warm-up.
    let warm = kernel.run_jax(sizes, inputs);
    let mut best = Duration::MAX;
    for _ in 0..repetitions.max(1) {
        let start = Instant::now();
        let _ = kernel.run_jax(sizes, inputs);
        best = best.min(start.elapsed());
    }
    Timing {
        elapsed: best,
        output: warm.output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Preset;

    #[test]
    fn batch_timing_runs_for_a_small_kernel() {
        let kernel = crate::kernel_by_name("atax").unwrap();
        let sizes = kernel.sizes(Preset::Test);
        let t = time_batch(kernel.as_ref(), &sizes, 4, 1, 2).unwrap();
        assert_eq!(t.items, 4);
        assert!(t.workers >= 1 && t.workers <= 2);
        assert!(t.serial_items_per_sec > 0.0 && t.batched_items_per_sec > 0.0);
        assert!(t.speedup > 0.0);
    }

    #[test]
    fn serve_timing_runs_for_a_small_kernel() {
        let kernel = crate::kernel_by_name("atax").unwrap();
        let sizes = kernel.sizes(Preset::Test);
        let t = time_serve(
            kernel.as_ref(),
            &sizes,
            6,
            0.0,
            None,
            ServeOptions::default(),
            1,
        )
        .unwrap();
        assert_eq!(t.requests, 6);
        assert_eq!(t.completed, 6);
        assert_eq!(t.expired + t.failed + t.lost, 0);
        assert_eq!(t.latencies_ms.len(), 6);
        assert!(t.per_request_ms > 0.0 && t.p50_ms > 0.0 && t.p95_ms >= t.p50_ms);
        assert!(t.largest_batch >= 1);
    }

    #[test]
    fn timing_runs_for_a_small_kernel() {
        let kernel = crate::kernel_by_name("atax").unwrap();
        let sizes = kernel.sizes(Preset::Test);
        let inputs = kernel.inputs(&sizes);
        let d = time_dace(kernel.as_ref(), &sizes, &inputs, 1).unwrap();
        let j = time_jax(kernel.as_ref(), &sizes, &inputs, 1);
        assert!((d.output - j.output).abs() < 1e-6 * (1.0 + j.output.abs()));
        assert!(d.elapsed.as_nanos() > 0 && j.elapsed.as_nanos() > 0);
    }
}
