//! Command-line runner for the NPBench kernel suite.
//!
//! Serial mode times the DaCe-AD gradient of each selected kernel against
//! the jax-rs baseline (one row per kernel, like the paper's tables):
//!
//! ```text
//! npbench [--kernel NAME[,NAME...]] [--preset test|bench] [--reps N]
//! ```
//!
//! Batch mode (`--batch N`) exercises the batched serving path instead:
//! every selected kernel's gradient program serves `N` distinct input sets
//! through `GradientEngine::run_batch`, and the row compares items/sec of
//! the serial single-session loop against the batched driver:
//!
//! ```text
//! npbench --batch 8 [--workers W] [--kernel atax,jacobi2d] [--preset bench]
//! ```
//!
//! See `docs/benchmarking.md` for the measurement methodology.

use std::process::ExitCode;

use npbench::runner::{time_batch, time_dace, time_jax};
use npbench::{all_kernels, kernel_by_name, Kernel, Preset};

struct Args {
    kernels: Option<Vec<String>>,
    preset: Preset,
    reps: usize,
    batch: usize,
    workers: usize,
}

const USAGE: &str = "\
Usage: npbench [OPTIONS]

Options:
  --kernel NAME[,NAME...]  run only the named kernels (default: all)
  --preset test|bench      problem-size preset (default: bench)
  --reps N                 best-of-N timing repetitions (default: 3)
  --batch N                batched-serving mode: serve N input sets per
                           kernel through GradientEngine::run_batch and
                           report items/sec vs the serial session loop
  --workers W              cap the batched fan-out at W concurrent items
                           (default: the worker pool's full width)
  --help                   print this message
";

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        kernels: None,
        preset: Preset::Bench,
        reps: 3,
        batch: 0,
        workers: 0,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| -> Result<&String, String> {
            argv.get(i + 1)
                .ok_or_else(|| format!("missing value for `{}`", argv[i]))
        };
        match argv[i].as_str() {
            "--help" | "-h" => return Ok(None),
            "--kernel" => {
                args.kernels = Some(need(i)?.split(',').map(str::to_string).collect());
                i += 2;
            }
            "--preset" => {
                args.preset = match need(i)?.as_str() {
                    "bench" => Preset::Bench,
                    "test" => Preset::Test,
                    other => return Err(format!("unknown preset `{other}`")),
                };
                i += 2;
            }
            "--reps" => {
                args.reps = need(i)?
                    .parse()
                    .map_err(|e| format!("bad --reps value: {e}"))?;
                i += 2;
            }
            "--batch" => {
                args.batch = need(i)?
                    .parse()
                    .map_err(|e| format!("bad --batch value: {e}"))?;
                i += 2;
            }
            "--workers" => {
                args.workers = need(i)?
                    .parse()
                    .map_err(|e| format!("bad --workers value: {e}"))?;
                i += 2;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Some(args))
}

fn selected_kernels(names: &Option<Vec<String>>) -> Result<Vec<Box<dyn Kernel>>, String> {
    match names {
        None => Ok(all_kernels()),
        Some(names) => names
            .iter()
            .map(|n| kernel_by_name(n).ok_or_else(|| format!("unknown kernel `{n}`")))
            .collect(),
    }
}

fn run_serial(kernels: &[Box<dyn Kernel>], preset: Preset, reps: usize) -> Result<(), String> {
    println!(
        "{:<12} {:>14} {:>14} {:>10}",
        "kernel", "DaCe AD [ms]", "baseline [ms]", "speedup"
    );
    for kernel in kernels {
        let sizes = kernel.sizes(preset);
        let inputs = kernel.inputs(&sizes);
        let dace = time_dace(kernel.as_ref(), &sizes, &inputs, reps)
            .map_err(|e| format!("{}: {e}", kernel.name()))?;
        let jax = time_jax(kernel.as_ref(), &sizes, &inputs, reps);
        println!(
            "{:<12} {:>14.3} {:>14.3} {:>9.2}x",
            kernel.name(),
            dace.elapsed.as_secs_f64() * 1e3,
            jax.elapsed.as_secs_f64() * 1e3,
            jax.elapsed.as_secs_f64() / dace.elapsed.as_secs_f64().max(1e-12),
        );
    }
    Ok(())
}

fn run_batched(
    kernels: &[Box<dyn Kernel>],
    preset: Preset,
    reps: usize,
    batch: usize,
    workers: usize,
) -> Result<(), String> {
    println!(
        "{:<12} {:>6} {:>8} {:>16} {:>16} {:>9}",
        "kernel", "items", "workers", "serial [it/s]", "batched [it/s]", "speedup"
    );
    for kernel in kernels {
        let sizes = kernel.sizes(preset);
        let t = time_batch(kernel.as_ref(), &sizes, batch, reps, workers)
            .map_err(|e| format!("{}: {e}", kernel.name()))?;
        println!(
            "{:<12} {:>6} {:>8} {:>16.1} {:>16.1} {:>8.2}x",
            kernel.name(),
            t.items,
            t.workers,
            t.serial_items_per_sec,
            t.batched_items_per_sec,
            t.speedup,
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("npbench: {e}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let kernels = match selected_kernels(&args.kernels) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("npbench: {e}");
            return ExitCode::from(2);
        }
    };
    let result = if args.batch > 0 {
        run_batched(&kernels, args.preset, args.reps, args.batch, args.workers)
    } else {
        run_serial(&kernels, args.preset, args.reps)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("npbench: {e}");
            ExitCode::from(1)
        }
    }
}
