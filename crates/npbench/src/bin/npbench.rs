//! Command-line runner for the NPBench kernel suite.
//!
//! Serial mode times the DaCe-AD gradient of each selected kernel against
//! the jax-rs baseline (one row per kernel, like the paper's tables):
//!
//! ```text
//! npbench [--kernel NAME[,NAME...]] [--preset test|bench] [--reps N]
//! ```
//!
//! Batch mode (`--batch N`) exercises the batched serving path instead:
//! every selected kernel's gradient program serves `N` distinct input sets
//! through `GradientEngine::run_batch`, and the row compares items/sec of
//! the serial single-session loop against the batched driver:
//!
//! ```text
//! npbench --batch 8 [--workers W] [--kernel atax,jacobi2d] [--preset bench]
//! ```
//!
//! Serve mode (`--serve RPS`) drives the dynamic-admission server with an
//! open-loop load: `--requests` individually submitted requests per kernel,
//! paced at `RPS` submissions per second (`0` = as fast as possible),
//! reporting completion counters and p50/p95 latency.  The process exits
//! non-zero if any request is lost, fails, or expires without a deadline
//! having been set — which is what the CI serve-smoke step asserts:
//!
//! ```text
//! npbench --serve 200 --requests 32 [--deadline-ms D] [--max-batch B]
//!         [--max-wait-ms W] [--kernel atax,jacobi2d] [--preset test]
//! ```
//!
//! Verify mode (`--verify`) runs the static SDFG verifier and the affine
//! dependence analyzer over every selected kernel instead of executing
//! anything, printing a per-kernel table of diagnostics and per-map
//! parallelism verdicts.  The process exits non-zero if any kernel produces
//! an error-severity diagnostic or a proven `Race` verdict — the CI verify
//! step asserts the whole suite is clean:
//!
//! ```text
//! npbench --verify [--kernel atax,jacobi2d] [--preset test]
//! ```
//!
//! Gateway mode (`--gateway CLIENTS`) is the multi-tenant chaos smoke: every
//! selected kernel registers as a tenant on one shared `Gateway`, `CLIENTS`
//! threads submit round-robin across tenants (every third request carries
//! the `--deadline-ms` deadline) while faults (`--inject-panic-every`,
//! `--inject-delay-ms`) and concurrent hot-swaps (`--reloads`) hammer the
//! dispatch path.  The process exits non-zero if any handle is lost, any
//! completed gradient diverges from the serial reference, or any stats
//! snapshot violates counter conservation:
//!
//! ```text
//! npbench --gateway 8 --requests 12 --kernel atax,jacobi2d --preset test \
//!         --inject-panic-every 7 --inject-delay-ms 1 --deadline-ms 500 \
//!         --queue-cap 32 --reloads 2
//! ```
//!
//! See `docs/benchmarking.md` and `docs/serving.md` for the measurement
//! methodology.

use std::process::ExitCode;
use std::time::Duration;

use npbench::runner::{time_batch, time_dace, time_gateway, time_jax, time_serve, GatewayLoad};
use npbench::{all_kernels, kernel_by_name, Kernel, Preset};

struct Args {
    kernels: Option<Vec<String>>,
    preset: Preset,
    reps: usize,
    batch: usize,
    workers: usize,
    serve: Option<f64>,
    requests: usize,
    deadline_ms: Option<f64>,
    max_batch: usize,
    max_wait_ms: f64,
    gateway: Option<usize>,
    verify: bool,
    queue_cap: usize,
    retry_budget: u32,
    inject_panic_every: Option<u64>,
    inject_delay_ms: f64,
    reloads: usize,
}

const USAGE: &str = "\
Usage: npbench [OPTIONS]

Options:
  --kernel NAME[,NAME...]  run only the named kernels (default: all)
  --preset test|bench      problem-size preset (default: bench)
  --reps N                 best-of-N timing repetitions (default: 3)
  --batch N                batched-serving mode: serve N input sets per
                           kernel through GradientEngine::run_batch and
                           report items/sec vs the serial session loop
  --workers W              cap the batched fan-out at W concurrent items
                           (default: the worker pool's full width)
  --serve RPS              dynamic-serving mode: open-loop load generator
                           submitting --requests individual requests per
                           kernel at RPS submissions/sec (0 = unpaced)
                           through GradientEngine::serve; exits non-zero
                           on any lost/failed/unexpectedly expired request
  --requests N             requests per kernel (serve mode) or per client
                           (gateway mode) (default: 64)
  --deadline-ms D          serve mode: per-request deadline in milliseconds
                           (default: none; expiries are then allowed);
                           gateway mode: deadline on every third request
  --max-batch B            serve mode: admission-queue batch bound
                           (default: 8)
  --max-wait-ms W          serve mode: admission-queue linger window in
                           milliseconds (default: 2)
  --verify                 static-analysis mode: run the SDFG verifier and
                           the affine dependence analyzer over the selected
                           kernels (no execution) and print per-kernel
                           diagnostics and per-map verdicts; exits non-zero
                           on any error diagnostic or proven race
  --gateway CLIENTS        multi-tenant chaos mode: register every selected
                           kernel as a tenant on one shared Gateway and
                           hammer it from CLIENTS threads (--requests per
                           client, round-robin across tenants; every third
                           request carries --deadline-ms); exits non-zero
                           on any lost handle, mismatched result or torn
                           stats snapshot
  --queue-cap N            gateway mode: per-tenant admission-queue
                           capacity (default: 32)
  --retry-budget N         gateway mode: retries per idempotent request hit
                           by an infrastructure fault (default: 2)
  --inject-panic-every K   gateway mode: panic on every K-th dispatch of
                           every tenant (default: no panics)
  --inject-delay-ms D      gateway mode: artificial per-item dispatch
                           latency in milliseconds (default: 0)
  --reloads N              gateway mode: concurrent plan hot-swaps during
                           the storm (default: 2)
  --help                   print this message
";

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        kernels: None,
        preset: Preset::Bench,
        reps: 3,
        batch: 0,
        workers: 0,
        serve: None,
        requests: 64,
        deadline_ms: None,
        max_batch: 8,
        max_wait_ms: 2.0,
        gateway: None,
        verify: false,
        queue_cap: 32,
        retry_budget: 2,
        inject_panic_every: None,
        inject_delay_ms: 0.0,
        reloads: 2,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| -> Result<&String, String> {
            argv.get(i + 1)
                .ok_or_else(|| format!("missing value for `{}`", argv[i]))
        };
        match argv[i].as_str() {
            "--help" | "-h" => return Ok(None),
            "--kernel" => {
                args.kernels = Some(need(i)?.split(',').map(str::to_string).collect());
                i += 2;
            }
            "--preset" => {
                args.preset = match need(i)?.as_str() {
                    "bench" => Preset::Bench,
                    "test" => Preset::Test,
                    other => return Err(format!("unknown preset `{other}`")),
                };
                i += 2;
            }
            "--reps" => {
                args.reps = need(i)?
                    .parse()
                    .map_err(|e| format!("bad --reps value: {e}"))?;
                i += 2;
            }
            "--batch" => {
                args.batch = need(i)?
                    .parse()
                    .map_err(|e| format!("bad --batch value: {e}"))?;
                i += 2;
            }
            "--workers" => {
                args.workers = need(i)?
                    .parse()
                    .map_err(|e| format!("bad --workers value: {e}"))?;
                i += 2;
            }
            "--serve" => {
                args.serve = Some(
                    need(i)?
                        .parse()
                        .map_err(|e| format!("bad --serve value: {e}"))?,
                );
                i += 2;
            }
            "--requests" => {
                args.requests = need(i)?
                    .parse()
                    .map_err(|e| format!("bad --requests value: {e}"))?;
                i += 2;
            }
            "--deadline-ms" => {
                args.deadline_ms = Some(
                    need(i)?
                        .parse()
                        .map_err(|e| format!("bad --deadline-ms value: {e}"))?,
                );
                i += 2;
            }
            "--max-batch" => {
                args.max_batch = need(i)?
                    .parse()
                    .map_err(|e| format!("bad --max-batch value: {e}"))?;
                i += 2;
            }
            "--max-wait-ms" => {
                args.max_wait_ms = need(i)?
                    .parse()
                    .map_err(|e| format!("bad --max-wait-ms value: {e}"))?;
                i += 2;
            }
            "--verify" => {
                args.verify = true;
                i += 1;
            }
            "--gateway" => {
                args.gateway = Some(
                    need(i)?
                        .parse()
                        .map_err(|e| format!("bad --gateway value: {e}"))?,
                );
                i += 2;
            }
            "--queue-cap" => {
                args.queue_cap = need(i)?
                    .parse()
                    .map_err(|e| format!("bad --queue-cap value: {e}"))?;
                i += 2;
            }
            "--retry-budget" => {
                args.retry_budget = need(i)?
                    .parse()
                    .map_err(|e| format!("bad --retry-budget value: {e}"))?;
                i += 2;
            }
            "--inject-panic-every" => {
                args.inject_panic_every = Some(
                    need(i)?
                        .parse()
                        .map_err(|e| format!("bad --inject-panic-every value: {e}"))?,
                );
                i += 2;
            }
            "--inject-delay-ms" => {
                args.inject_delay_ms = need(i)?
                    .parse()
                    .map_err(|e| format!("bad --inject-delay-ms value: {e}"))?;
                i += 2;
            }
            "--reloads" => {
                args.reloads = need(i)?
                    .parse()
                    .map_err(|e| format!("bad --reloads value: {e}"))?;
                i += 2;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Some(args))
}

fn selected_kernels(names: &Option<Vec<String>>) -> Result<Vec<Box<dyn Kernel>>, String> {
    match names {
        None => Ok(all_kernels()),
        Some(names) => names
            .iter()
            .map(|n| kernel_by_name(n).ok_or_else(|| format!("unknown kernel `{n}`")))
            .collect(),
    }
}

fn run_serial(kernels: &[Box<dyn Kernel>], preset: Preset, reps: usize) -> Result<(), String> {
    println!(
        "{:<12} {:>14} {:>14} {:>10}",
        "kernel", "DaCe AD [ms]", "baseline [ms]", "speedup"
    );
    for kernel in kernels {
        let sizes = kernel.sizes(preset);
        let inputs = kernel.inputs(&sizes);
        let dace = time_dace(kernel.as_ref(), &sizes, &inputs, reps)
            .map_err(|e| format!("{}: {e}", kernel.name()))?;
        let jax = time_jax(kernel.as_ref(), &sizes, &inputs, reps);
        println!(
            "{:<12} {:>14.3} {:>14.3} {:>9.2}x",
            kernel.name(),
            dace.elapsed.as_secs_f64() * 1e3,
            jax.elapsed.as_secs_f64() * 1e3,
            jax.elapsed.as_secs_f64() / dace.elapsed.as_secs_f64().max(1e-12),
        );
    }
    Ok(())
}

fn run_batched(
    kernels: &[Box<dyn Kernel>],
    preset: Preset,
    reps: usize,
    batch: usize,
    workers: usize,
) -> Result<(), String> {
    println!(
        "{:<12} {:>6} {:>8} {:>16} {:>16} {:>9}",
        "kernel", "items", "workers", "serial [it/s]", "batched [it/s]", "speedup"
    );
    for kernel in kernels {
        let sizes = kernel.sizes(preset);
        let t = time_batch(kernel.as_ref(), &sizes, batch, reps, workers)
            .map_err(|e| format!("{}: {e}", kernel.name()))?;
        println!(
            "{:<12} {:>6} {:>8} {:>16.1} {:>16.1} {:>8.2}x",
            kernel.name(),
            t.items,
            t.workers,
            t.serial_items_per_sec,
            t.batched_items_per_sec,
            t.speedup,
        );
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn run_serve(
    kernels: &[Box<dyn Kernel>],
    preset: Preset,
    reps: usize,
    rps: f64,
    requests: usize,
    deadline_ms: Option<f64>,
    max_batch: usize,
    max_wait_ms: f64,
    workers: usize,
) -> Result<(), String> {
    let options = npbench::runner::serve_options(max_batch, max_wait_ms, workers);
    let deadline = deadline_ms.map(|d| Duration::from_secs_f64(d / 1e3));
    println!(
        "open-loop load: {requests} requests/kernel ({}), \
         max_batch={max_batch}, max_wait={max_wait_ms}ms{}",
        if rps > 0.0 {
            format!("{rps:.0} submissions/sec")
        } else {
            "unpaced".to_string()
        },
        match deadline_ms {
            Some(d) => format!(", deadline={d}ms"),
            None => String::new(),
        },
    );
    println!(
        "{:<12} {:>6} {:>6} {:>6} {:>6} {:>10} {:>10} {:>10} {:>10} {:>7}",
        "kernel", "done", "expd", "rej", "lost", "rps", "req [ms]", "p50 [ms]", "p95 [ms]", "batch"
    );
    let mut bad = 0usize;
    for kernel in kernels {
        let sizes = kernel.sizes(preset);
        let t = time_serve(
            kernel.as_ref(),
            &sizes,
            requests,
            rps,
            deadline,
            options.clone(),
            reps,
        )
        .map_err(|e| format!("{}: {e}", kernel.name()))?;
        println!(
            "{:<12} {:>6} {:>6} {:>6} {:>6} {:>10.1} {:>10.3} {:>10.3} {:>10.3} {:>7}",
            kernel.name(),
            t.completed,
            t.expired,
            t.rejected,
            t.lost,
            t.achieved_rps,
            t.per_request_ms,
            t.p50_ms,
            t.p95_ms,
            t.largest_batch,
        );
        // The smoke contract: nothing may be lost or fail, and without a
        // deadline nothing may expire.
        if t.lost > 0 || t.failed > 0 || (deadline.is_none() && t.expired > 0) {
            bad += 1;
        }
    }
    if bad > 0 {
        return Err(format!(
            "{bad} kernel(s) lost, failed or unexpectedly expired requests"
        ));
    }
    Ok(())
}

/// Collect every map scope in `graph` (including maps nested in map bodies)
/// and the analyzer's verdict for it under `bindings`.
fn map_verdicts(
    graph: &dace_sdfg::DataflowGraph,
    bindings: &std::collections::HashMap<String, i64>,
    out: &mut Vec<dace_sdfg::ParVerdict>,
) {
    for node in &graph.nodes {
        if let dace_sdfg::DfNode::MapScope(m) = node {
            out.push(dace_sdfg::analyze_map(m, bindings));
            map_verdicts(&m.body, bindings, out);
        }
    }
}

fn run_verify(kernels: &[Box<dyn Kernel>], preset: Preset) -> Result<(), String> {
    use dace_sdfg::{ParVerdict, Severity};
    println!(
        "{:<12} {:>7} {:>9} {:>5} {:>5} {:>10} {:>5} {:>8}",
        "kernel", "errors", "warnings", "maps", "safe", "reduction", "race", "unknown"
    );
    let mut dirty = 0usize;
    for kernel in kernels {
        let sizes = kernel.sizes(preset);
        let sdfg = kernel.build_dace(&sizes);
        let bindings = kernel.symbols(&sizes);
        let diags = sdfg.validate();
        let errors = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        let mut verdicts = Vec::new();
        for st in &sdfg.states {
            map_verdicts(&st.graph, &bindings, &mut verdicts);
        }
        let count = |v: fn(&ParVerdict) -> bool| verdicts.iter().filter(|x| v(x)).count();
        let races = count(|v| matches!(v, ParVerdict::Race(_)));
        println!(
            "{:<12} {:>7} {:>9} {:>5} {:>5} {:>10} {:>5} {:>8}",
            kernel.name(),
            errors,
            diags.len() - errors,
            verdicts.len(),
            count(|v| *v == ParVerdict::Safe),
            count(|v| *v == ParVerdict::Reduction),
            races,
            count(|v| *v == ParVerdict::Unknown),
        );
        for d in &diags {
            println!("             {d}");
        }
        for v in &verdicts {
            if let ParVerdict::Race(c) = v {
                println!("             race on `{}`: {c}", c.array);
            }
        }
        if errors > 0 || races > 0 {
            dirty += 1;
        }
    }
    if dirty > 0 {
        return Err(format!(
            "{dirty} kernel(s) failed verification (error diagnostics or proven races)"
        ));
    }
    Ok(())
}

fn run_gateway(kernels: &[Box<dyn Kernel>], preset: Preset, args: &Args) -> Result<(), String> {
    let load = GatewayLoad {
        clients: args.gateway.unwrap_or(6),
        requests_per_client: args.requests,
        deadline: args.deadline_ms.map(|d| Duration::from_secs_f64(d / 1e3)),
        queue_capacity: args.queue_cap,
        retry_budget: args.retry_budget,
        max_batch: args.max_batch,
        max_wait: Duration::from_secs_f64(args.max_wait_ms.max(0.0) / 1e3),
        inject_panic_every: args.inject_panic_every,
        inject_delay: Duration::from_secs_f64(args.inject_delay_ms.max(0.0) / 1e3),
        reloads: args.reloads,
    };
    println!(
        "gateway chaos: {} tenant(s), {} client(s) x {} request(s), \
         queue_cap={}, retry_budget={}, reloads={}{}{}{}",
        kernels.len(),
        load.clients.max(1),
        load.requests_per_client,
        load.queue_capacity,
        load.retry_budget,
        load.reloads,
        match load.inject_panic_every {
            Some(k) => format!(", panic every {k} dispatches"),
            None => String::new(),
        },
        if load.inject_delay > Duration::ZERO {
            format!(", +{:.1}ms/item", load.inject_delay.as_secs_f64() * 1e3)
        } else {
            String::new()
        },
        match args.deadline_ms {
            Some(d) => format!(", deadline={d}ms on every 3rd request"),
            None => String::new(),
        },
    );
    let t = time_gateway(kernels, preset, &load)?;
    println!(
        "submitted {} | completed {} | shed {} | expired {} | failed {} | \
         lost {} | mismatched {} | torn {}/{} snapshots | {:.1} done/s over {:.0}ms",
        t.submitted,
        t.completed,
        t.shed,
        t.expired,
        t.failed,
        t.lost,
        t.mismatched,
        t.torn_snapshots,
        t.samples,
        t.achieved_rps,
        t.elapsed.as_secs_f64() * 1e3,
    );
    println!(
        "{:<12} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>5} {:>8} {:>5} {:>9}",
        "tenant",
        "done",
        "shed",
        "expd",
        "fail",
        "retry",
        "panic",
        "chkf",
        "trips",
        "breaker",
        "batch",
        "p50 [ms]"
    );
    let mut residue = 0usize;
    for (name, s) in &t.stats.tenants {
        println!(
            "{:<12} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>5} {:>8} {:>5} {:>9.3}",
            name,
            s.completed,
            s.overloaded + s.degraded,
            s.expired,
            s.failed,
            s.retried,
            s.panics,
            s.checkout_failures,
            s.breaker_trips,
            s.breaker.to_string(),
            s.largest_batch,
            s.p50_latency.as_secs_f64() * 1e3,
        );
        residue += s.queue_depth + s.in_flight as usize;
    }
    // The chaos contract the CI smoke leg enforces: every handle resolves
    // exactly once with a typed outcome, completed results are bit-exact,
    // and every sampled snapshot (plus the final one) conserves.
    let mut violations = Vec::new();
    if t.lost > 0 {
        violations.push(format!("{} lost handle(s)", t.lost));
    }
    if t.mismatched > 0 {
        violations.push(format!("{} mismatched result(s)", t.mismatched));
    }
    if t.torn_snapshots > 0 {
        violations.push(format!("{} torn stats snapshot(s)", t.torn_snapshots));
    }
    if !t.conserved {
        violations.push("final snapshot violates conservation".to_string());
    }
    if residue > 0 {
        violations.push(format!("{residue} request(s) still queued/in flight"));
    }
    if !violations.is_empty() {
        return Err(format!(
            "gateway contract violated: {}",
            violations.join("; ")
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("npbench: {e}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let kernels = match selected_kernels(&args.kernels) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("npbench: {e}");
            return ExitCode::from(2);
        }
    };
    let result = if args.verify {
        run_verify(&kernels, args.preset)
    } else if args.gateway.is_some() {
        run_gateway(&kernels, args.preset, &args)
    } else if let Some(rps) = args.serve {
        run_serve(
            &kernels,
            args.preset,
            args.reps,
            rps,
            args.requests,
            args.deadline_ms,
            args.max_batch,
            args.max_wait_ms,
            args.workers,
        )
    } else if args.batch > 0 {
        run_batched(&kernels, args.preset, args.reps, args.batch, args.workers)
    } else {
        run_serial(&kernels, args.preset, args.reps)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("npbench: {e}");
            ExitCode::from(1)
        }
    }
}
