//! Command-line runner for the NPBench kernel suite.
//!
//! Serial mode times the DaCe-AD gradient of each selected kernel against
//! the jax-rs baseline (one row per kernel, like the paper's tables):
//!
//! ```text
//! npbench [--kernel NAME[,NAME...]] [--preset test|bench] [--reps N]
//! ```
//!
//! Batch mode (`--batch N`) exercises the batched serving path instead:
//! every selected kernel's gradient program serves `N` distinct input sets
//! through `GradientEngine::run_batch`, and the row compares items/sec of
//! the serial single-session loop against the batched driver:
//!
//! ```text
//! npbench --batch 8 [--workers W] [--kernel atax,jacobi2d] [--preset bench]
//! ```
//!
//! Serve mode (`--serve RPS`) drives the dynamic-admission server with an
//! open-loop load: `--requests` individually submitted requests per kernel,
//! paced at `RPS` submissions per second (`0` = as fast as possible),
//! reporting completion counters and p50/p95 latency.  The process exits
//! non-zero if any request is lost, fails, or expires without a deadline
//! having been set — which is what the CI serve-smoke step asserts:
//!
//! ```text
//! npbench --serve 200 --requests 32 [--deadline-ms D] [--max-batch B]
//!         [--max-wait-ms W] [--kernel atax,jacobi2d] [--preset test]
//! ```
//!
//! See `docs/benchmarking.md` and `docs/serving.md` for the measurement
//! methodology.

use std::process::ExitCode;
use std::time::Duration;

use npbench::runner::{time_batch, time_dace, time_jax, time_serve};
use npbench::{all_kernels, kernel_by_name, Kernel, Preset};

struct Args {
    kernels: Option<Vec<String>>,
    preset: Preset,
    reps: usize,
    batch: usize,
    workers: usize,
    serve: Option<f64>,
    requests: usize,
    deadline_ms: Option<f64>,
    max_batch: usize,
    max_wait_ms: f64,
}

const USAGE: &str = "\
Usage: npbench [OPTIONS]

Options:
  --kernel NAME[,NAME...]  run only the named kernels (default: all)
  --preset test|bench      problem-size preset (default: bench)
  --reps N                 best-of-N timing repetitions (default: 3)
  --batch N                batched-serving mode: serve N input sets per
                           kernel through GradientEngine::run_batch and
                           report items/sec vs the serial session loop
  --workers W              cap the batched fan-out at W concurrent items
                           (default: the worker pool's full width)
  --serve RPS              dynamic-serving mode: open-loop load generator
                           submitting --requests individual requests per
                           kernel at RPS submissions/sec (0 = unpaced)
                           through GradientEngine::serve; exits non-zero
                           on any lost/failed/unexpectedly expired request
  --requests N             serve mode: requests per kernel (default: 64)
  --deadline-ms D          serve mode: per-request deadline in milliseconds
                           (default: none; expiries are then allowed)
  --max-batch B            serve mode: admission-queue batch bound
                           (default: 8)
  --max-wait-ms W          serve mode: admission-queue linger window in
                           milliseconds (default: 2)
  --help                   print this message
";

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        kernels: None,
        preset: Preset::Bench,
        reps: 3,
        batch: 0,
        workers: 0,
        serve: None,
        requests: 64,
        deadline_ms: None,
        max_batch: 8,
        max_wait_ms: 2.0,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| -> Result<&String, String> {
            argv.get(i + 1)
                .ok_or_else(|| format!("missing value for `{}`", argv[i]))
        };
        match argv[i].as_str() {
            "--help" | "-h" => return Ok(None),
            "--kernel" => {
                args.kernels = Some(need(i)?.split(',').map(str::to_string).collect());
                i += 2;
            }
            "--preset" => {
                args.preset = match need(i)?.as_str() {
                    "bench" => Preset::Bench,
                    "test" => Preset::Test,
                    other => return Err(format!("unknown preset `{other}`")),
                };
                i += 2;
            }
            "--reps" => {
                args.reps = need(i)?
                    .parse()
                    .map_err(|e| format!("bad --reps value: {e}"))?;
                i += 2;
            }
            "--batch" => {
                args.batch = need(i)?
                    .parse()
                    .map_err(|e| format!("bad --batch value: {e}"))?;
                i += 2;
            }
            "--workers" => {
                args.workers = need(i)?
                    .parse()
                    .map_err(|e| format!("bad --workers value: {e}"))?;
                i += 2;
            }
            "--serve" => {
                args.serve = Some(
                    need(i)?
                        .parse()
                        .map_err(|e| format!("bad --serve value: {e}"))?,
                );
                i += 2;
            }
            "--requests" => {
                args.requests = need(i)?
                    .parse()
                    .map_err(|e| format!("bad --requests value: {e}"))?;
                i += 2;
            }
            "--deadline-ms" => {
                args.deadline_ms = Some(
                    need(i)?
                        .parse()
                        .map_err(|e| format!("bad --deadline-ms value: {e}"))?,
                );
                i += 2;
            }
            "--max-batch" => {
                args.max_batch = need(i)?
                    .parse()
                    .map_err(|e| format!("bad --max-batch value: {e}"))?;
                i += 2;
            }
            "--max-wait-ms" => {
                args.max_wait_ms = need(i)?
                    .parse()
                    .map_err(|e| format!("bad --max-wait-ms value: {e}"))?;
                i += 2;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Some(args))
}

fn selected_kernels(names: &Option<Vec<String>>) -> Result<Vec<Box<dyn Kernel>>, String> {
    match names {
        None => Ok(all_kernels()),
        Some(names) => names
            .iter()
            .map(|n| kernel_by_name(n).ok_or_else(|| format!("unknown kernel `{n}`")))
            .collect(),
    }
}

fn run_serial(kernels: &[Box<dyn Kernel>], preset: Preset, reps: usize) -> Result<(), String> {
    println!(
        "{:<12} {:>14} {:>14} {:>10}",
        "kernel", "DaCe AD [ms]", "baseline [ms]", "speedup"
    );
    for kernel in kernels {
        let sizes = kernel.sizes(preset);
        let inputs = kernel.inputs(&sizes);
        let dace = time_dace(kernel.as_ref(), &sizes, &inputs, reps)
            .map_err(|e| format!("{}: {e}", kernel.name()))?;
        let jax = time_jax(kernel.as_ref(), &sizes, &inputs, reps);
        println!(
            "{:<12} {:>14.3} {:>14.3} {:>9.2}x",
            kernel.name(),
            dace.elapsed.as_secs_f64() * 1e3,
            jax.elapsed.as_secs_f64() * 1e3,
            jax.elapsed.as_secs_f64() / dace.elapsed.as_secs_f64().max(1e-12),
        );
    }
    Ok(())
}

fn run_batched(
    kernels: &[Box<dyn Kernel>],
    preset: Preset,
    reps: usize,
    batch: usize,
    workers: usize,
) -> Result<(), String> {
    println!(
        "{:<12} {:>6} {:>8} {:>16} {:>16} {:>9}",
        "kernel", "items", "workers", "serial [it/s]", "batched [it/s]", "speedup"
    );
    for kernel in kernels {
        let sizes = kernel.sizes(preset);
        let t = time_batch(kernel.as_ref(), &sizes, batch, reps, workers)
            .map_err(|e| format!("{}: {e}", kernel.name()))?;
        println!(
            "{:<12} {:>6} {:>8} {:>16.1} {:>16.1} {:>8.2}x",
            kernel.name(),
            t.items,
            t.workers,
            t.serial_items_per_sec,
            t.batched_items_per_sec,
            t.speedup,
        );
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn run_serve(
    kernels: &[Box<dyn Kernel>],
    preset: Preset,
    reps: usize,
    rps: f64,
    requests: usize,
    deadline_ms: Option<f64>,
    max_batch: usize,
    max_wait_ms: f64,
    workers: usize,
) -> Result<(), String> {
    let options = npbench::runner::serve_options(max_batch, max_wait_ms, workers);
    let deadline = deadline_ms.map(|d| Duration::from_secs_f64(d / 1e3));
    println!(
        "open-loop load: {requests} requests/kernel ({}), \
         max_batch={max_batch}, max_wait={max_wait_ms}ms{}",
        if rps > 0.0 {
            format!("{rps:.0} submissions/sec")
        } else {
            "unpaced".to_string()
        },
        match deadline_ms {
            Some(d) => format!(", deadline={d}ms"),
            None => String::new(),
        },
    );
    println!(
        "{:<12} {:>6} {:>6} {:>6} {:>10} {:>10} {:>10} {:>10} {:>7}",
        "kernel", "done", "expd", "lost", "rps", "req [ms]", "p50 [ms]", "p95 [ms]", "batch"
    );
    let mut bad = 0usize;
    for kernel in kernels {
        let sizes = kernel.sizes(preset);
        let t = time_serve(
            kernel.as_ref(),
            &sizes,
            requests,
            rps,
            deadline,
            options.clone(),
            reps,
        )
        .map_err(|e| format!("{}: {e}", kernel.name()))?;
        println!(
            "{:<12} {:>6} {:>6} {:>6} {:>10.1} {:>10.3} {:>10.3} {:>10.3} {:>7}",
            kernel.name(),
            t.completed,
            t.expired,
            t.lost,
            t.achieved_rps,
            t.per_request_ms,
            t.p50_ms,
            t.p95_ms,
            t.largest_batch,
        );
        // The smoke contract: nothing may be lost or fail, and without a
        // deadline nothing may expire.
        if t.lost > 0 || t.failed > 0 || (deadline.is_none() && t.expired > 0) {
            bad += 1;
        }
    }
    if bad > 0 {
        return Err(format!(
            "{bad} kernel(s) lost, failed or unexpectedly expired requests"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("npbench: {e}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let kernels = match selected_kernels(&args.kernels) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("npbench: {e}");
            return ExitCode::from(2);
        }
    };
    let result = if let Some(rps) = args.serve {
        run_serve(
            &kernels,
            args.preset,
            args.reps,
            rps,
            args.requests,
            args.deadline_ms,
            args.max_batch,
            args.max_wait_ms,
            args.workers,
        )
    } else if args.batch > 0 {
        run_batched(&kernels, args.preset, args.reps, args.batch, args.workers)
    } else {
        run_serial(&kernels, args.preset, args.reps)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("npbench: {e}");
            ExitCode::from(1)
        }
    }
}
