//! Non-vectorized NPBench kernels (the Fig. 11 category): sequential loops,
//! element-wise accesses and in-place updates.
//!
//! The jax-rs implementations follow the JAX-JIT porting rules described in
//! §V-A of the paper: loops keep their structure, every element read becomes
//! a `dynamic_slice` and every element write a `dynamic_update_slice` (array
//! immutability), which is exactly the per-iteration overhead the paper
//! analyses on Seidel2d.

use std::collections::HashMap;

use dace_frontend::{elem, lit, ProgramBuilder};
use dace_sdfg::{Sdfg, SymExpr};
use dace_tensor::random::uniform_range;
use dace_tensor::Tensor;
use jax_rs::{Context, Var};

use crate::{Category, GradOutput, Kernel, Preset, Sizes};

/// All loop kernels.
pub fn kernels() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(Seidel2d),
        Box::new(Jacobi2d),
        Box::new(Syrk),
        Box::new(Syr2k),
        Box::new(Trmm),
        Box::new(Conv2d),
    ]
}

fn sym_map(pairs: &[(&str, usize)]) -> HashMap<String, i64> {
    pairs
        .iter()
        .map(|(k, v)| (k.to_string(), *v as i64))
        .collect()
}

fn grad_map(names: &[&str], grads: Vec<Tensor>) -> HashMap<String, Tensor> {
    names
        .iter()
        .zip(grads)
        .map(|(n, g)| (n.to_string(), g))
        .collect()
}

// ---------------------------------------------------------------------------
// seidel2d: in-place 9-point Gauss-Seidel sweep inside a time-step loop
// ---------------------------------------------------------------------------

struct Seidel2d;

impl Kernel for Seidel2d {
    fn name(&self) -> &'static str {
        "seidel2d"
    }
    fn category(&self) -> Category {
        Category::Loops
    }
    fn sizes(&self, preset: Preset) -> Sizes {
        match preset {
            Preset::Test => Sizes::new(7, 0, 2),
            Preset::Bench => Sizes::new(28, 0, 4),
        }
    }
    fn symbols(&self, s: &Sizes) -> HashMap<String, i64> {
        sym_map(&[("N", s.n), ("TSTEPS", s.tsteps)])
    }
    fn inputs(&self, s: &Sizes) -> HashMap<String, Tensor> {
        [("A".to_string(), uniform_range(&[s.n, s.n], 0.0, 1.0, 31))]
            .into_iter()
            .collect()
    }
    fn wrt(&self) -> Vec<&'static str> {
        vec!["A"]
    }
    fn build_dace(&self, _s: &Sizes) -> Sdfg {
        let mut b = ProgramBuilder::new("seidel2d");
        let n = b.symbol("N");
        let tsteps = b.symbol("TSTEPS");
        b.add_input("A", vec![n.clone(), n.clone()]).unwrap();
        b.add_scalar("OUT").unwrap();
        let (i, j) = (SymExpr::sym("i"), SymExpr::sym("j"));
        let one = SymExpr::int(1);
        b.for_range("t", 0, tsteps.clone(), |b| {
            b.for_range("i", 1, n.sub(&one), |b| {
                b.for_range("j", 1, n.sub(&one), |b| {
                    let mut acc = elem("A", vec![i.sub(&one), j.sub(&one)]);
                    for (di, dj) in [
                        (0i64, 0i64),
                        (0, 1),
                        (1, -1),
                        (1, 0),
                        (1, 1),
                        (2, -1),
                        (2, 0),
                        (2, 1),
                    ] {
                        let ii = i.sub(&one).add_int(di);
                        let jj = j.sub(&one).add_int(dj + 1);
                        acc = acc.add(elem("A", vec![ii, jj]));
                    }
                    b.assign_element("A", vec![i.clone(), j.clone()], acc.div(lit(9.0)));
                });
            });
        });
        b.sum_into("OUT", "A", false);
        b.build().unwrap()
    }
    fn run_jax(&self, s: &Sizes, inputs: &HashMap<String, Tensor>) -> GradOutput {
        let ctx = Context::new();
        let a0 = ctx.input(inputs["A"].clone());
        let mut a = a0.clone();
        for _t in 0..s.tsteps {
            for i in 1..s.n - 1 {
                for j in 1..s.n - 1 {
                    // 3x3 dynamic slice around (i, j), averaged, scattered back.
                    let window = a.dynamic_slice(&[i - 1, j - 1], &[3, 3]);
                    let avg = window.sum().scale(1.0 / 9.0);
                    a = a.set_element(&[i, j], &avg);
                }
            }
        }
        let out = a.sum();
        let grads = ctx.grad(&out, &[&a0]);
        GradOutput {
            output: out.value().data()[0],
            gradients: grad_map(&["A"], grads),
        }
    }
    fn jax_loc(&self) -> usize {
        8
    }
}

// ---------------------------------------------------------------------------
// jacobi2d: 5-point Jacobi updates, A and B ping-pong, explicit loops
// ---------------------------------------------------------------------------

struct Jacobi2d;

impl Kernel for Jacobi2d {
    fn name(&self) -> &'static str {
        "jacobi2d"
    }
    fn category(&self) -> Category {
        Category::Loops
    }
    fn sizes(&self, preset: Preset) -> Sizes {
        match preset {
            Preset::Test => Sizes::new(7, 0, 2),
            Preset::Bench => Sizes::new(26, 0, 4),
        }
    }
    fn symbols(&self, s: &Sizes) -> HashMap<String, i64> {
        sym_map(&[("N", s.n), ("TSTEPS", s.tsteps)])
    }
    fn inputs(&self, s: &Sizes) -> HashMap<String, Tensor> {
        [
            ("A".to_string(), uniform_range(&[s.n, s.n], 0.0, 1.0, 33)),
            ("B".to_string(), uniform_range(&[s.n, s.n], 0.0, 1.0, 34)),
        ]
        .into_iter()
        .collect()
    }
    fn wrt(&self) -> Vec<&'static str> {
        vec!["A", "B"]
    }
    fn build_dace(&self, _s: &Sizes) -> Sdfg {
        let mut b = ProgramBuilder::new("jacobi2d");
        let n = b.symbol("N");
        let tsteps = b.symbol("TSTEPS");
        b.add_input("A", vec![n.clone(), n.clone()]).unwrap();
        b.add_input("B", vec![n.clone(), n.clone()]).unwrap();
        b.add_scalar("OUT").unwrap();
        let (i, j) = (SymExpr::sym("i"), SymExpr::sym("j"));
        let one = SymExpr::int(1);
        let five_point = |arr: &str, i: &SymExpr, j: &SymExpr| {
            elem(arr, vec![i.clone(), j.clone()])
                .add(elem(arr, vec![i.clone(), j.sub(&SymExpr::int(1))]))
                .add(elem(arr, vec![i.clone(), j.add_int(1)]))
                .add(elem(arr, vec![i.add_int(1), j.clone()]))
                .add(elem(arr, vec![i.sub(&SymExpr::int(1)), j.clone()]))
                .mul(lit(0.2))
        };
        b.for_range("t", 0, tsteps.clone(), |b| {
            b.for_range("i", 1, n.sub(&one), |b| {
                b.for_range("j", 1, n.sub(&one), |b| {
                    b.assign_element("B", vec![i.clone(), j.clone()], five_point("A", &i, &j));
                });
            });
            b.for_range("i", 1, n.sub(&one), |b| {
                b.for_range("j", 1, n.sub(&one), |b| {
                    b.assign_element("A", vec![i.clone(), j.clone()], five_point("B", &i, &j));
                });
            });
        });
        b.sum_into("OUT", "A", false);
        b.build().unwrap()
    }
    fn run_jax(&self, s: &Sizes, inputs: &HashMap<String, Tensor>) -> GradOutput {
        let ctx = Context::new();
        let a0 = ctx.input(inputs["A"].clone());
        let b0 = ctx.input(inputs["B"].clone());
        let five_point = |arr: &Var, i: usize, j: usize| {
            arr.get_element(&[i, j])
                .add(&arr.get_element(&[i, j - 1]))
                .add(&arr.get_element(&[i, j + 1]))
                .add(&arr.get_element(&[i + 1, j]))
                .add(&arr.get_element(&[i - 1, j]))
                .scale(0.2)
        };
        let (mut a, mut bb) = (a0.clone(), b0.clone());
        for _t in 0..s.tsteps {
            for i in 1..s.n - 1 {
                for j in 1..s.n - 1 {
                    let v = five_point(&a, i, j);
                    bb = bb.set_element(&[i, j], &v);
                }
            }
            for i in 1..s.n - 1 {
                for j in 1..s.n - 1 {
                    let v = five_point(&bb, i, j);
                    a = a.set_element(&[i, j], &v);
                }
            }
        }
        let out = a.sum();
        let grads = ctx.grad(&out, &[&a0, &b0]);
        GradOutput {
            output: out.value().data()[0],
            gradients: grad_map(&["A", "B"], grads),
        }
    }
    fn jax_loc(&self) -> usize {
        14
    }
}

// ---------------------------------------------------------------------------
// syrk: C := beta*C + alpha*A*A^T (lower triangle)
// ---------------------------------------------------------------------------

const ALPHA: f64 = 1.5;
const BETA: f64 = 1.2;

struct Syrk;

impl Kernel for Syrk {
    fn name(&self) -> &'static str {
        "syrk"
    }
    fn category(&self) -> Category {
        Category::Loops
    }
    fn sizes(&self, preset: Preset) -> Sizes {
        match preset {
            Preset::Test => Sizes::new(6, 5, 0),
            Preset::Bench => Sizes::new(18, 14, 0),
        }
    }
    fn symbols(&self, s: &Sizes) -> HashMap<String, i64> {
        sym_map(&[("N", s.n), ("M", s.m)])
    }
    fn inputs(&self, s: &Sizes) -> HashMap<String, Tensor> {
        [
            ("A".to_string(), uniform_range(&[s.n, s.m], -1.0, 1.0, 35)),
            ("C".to_string(), uniform_range(&[s.n, s.n], -1.0, 1.0, 36)),
        ]
        .into_iter()
        .collect()
    }
    fn wrt(&self) -> Vec<&'static str> {
        vec!["A", "C"]
    }
    fn build_dace(&self, _s: &Sizes) -> Sdfg {
        let mut b = ProgramBuilder::new("syrk");
        let n = b.symbol("N");
        let m = b.symbol("M");
        b.add_input("A", vec![n.clone(), m.clone()]).unwrap();
        b.add_input("C", vec![n.clone(), n.clone()]).unwrap();
        b.add_scalar("OUT").unwrap();
        let (i, j, k) = (SymExpr::sym("i"), SymExpr::sym("j"), SymExpr::sym("k"));
        b.for_range("i", 0, n.clone(), |b| {
            b.for_range("j", 0, i.add_int(1), |b| {
                b.assign_element(
                    "C",
                    vec![i.clone(), j.clone()],
                    elem("C", vec![i.clone(), j.clone()]).mul(lit(BETA)),
                );
            });
            b.for_range("k", 0, m.clone(), |b| {
                b.for_range("j", 0, i.add_int(1), |b| {
                    b.accumulate_element(
                        "C",
                        vec![i.clone(), j.clone()],
                        elem("A", vec![i.clone(), k.clone()])
                            .mul(elem("A", vec![j.clone(), k.clone()]))
                            .mul(lit(ALPHA)),
                    );
                });
            });
        });
        b.sum_into("OUT", "C", false);
        b.build().unwrap()
    }
    fn run_jax(&self, s: &Sizes, inputs: &HashMap<String, Tensor>) -> GradOutput {
        let ctx = Context::new();
        let a0 = ctx.input(inputs["A"].clone());
        let c0 = ctx.input(inputs["C"].clone());
        let mut c = c0.clone();
        for i in 0..s.n {
            for j in 0..=i {
                let scaled = c.get_element(&[i, j]).scale(BETA);
                c = c.set_element(&[i, j], &scaled);
            }
            for k in 0..s.m {
                for j in 0..=i {
                    let contrib = a0
                        .get_element(&[i, k])
                        .mul(&a0.get_element(&[j, k]))
                        .scale(ALPHA);
                    let updated = c.get_element(&[i, j]).add(&contrib);
                    c = c.set_element(&[i, j], &updated);
                }
            }
        }
        let out = c.sum();
        let grads = ctx.grad(&out, &[&a0, &c0]);
        GradOutput {
            output: out.value().data()[0],
            gradients: grad_map(&["A", "C"], grads),
        }
    }
    fn jax_loc(&self) -> usize {
        12
    }
}

// ---------------------------------------------------------------------------
// syr2k: C := beta*C + alpha*(A*B^T + B*A^T) (lower triangle)
// ---------------------------------------------------------------------------

struct Syr2k;

impl Kernel for Syr2k {
    fn name(&self) -> &'static str {
        "syr2k"
    }
    fn category(&self) -> Category {
        Category::Loops
    }
    fn sizes(&self, preset: Preset) -> Sizes {
        match preset {
            Preset::Test => Sizes::new(6, 4, 0),
            Preset::Bench => Sizes::new(16, 12, 0),
        }
    }
    fn symbols(&self, s: &Sizes) -> HashMap<String, i64> {
        sym_map(&[("N", s.n), ("M", s.m)])
    }
    fn inputs(&self, s: &Sizes) -> HashMap<String, Tensor> {
        [
            ("A".to_string(), uniform_range(&[s.n, s.m], -1.0, 1.0, 37)),
            ("B".to_string(), uniform_range(&[s.n, s.m], -1.0, 1.0, 38)),
            ("C".to_string(), uniform_range(&[s.n, s.n], -1.0, 1.0, 39)),
        ]
        .into_iter()
        .collect()
    }
    fn wrt(&self) -> Vec<&'static str> {
        vec!["A", "B", "C"]
    }
    fn build_dace(&self, _s: &Sizes) -> Sdfg {
        let mut b = ProgramBuilder::new("syr2k");
        let n = b.symbol("N");
        let m = b.symbol("M");
        b.add_input("A", vec![n.clone(), m.clone()]).unwrap();
        b.add_input("B", vec![n.clone(), m.clone()]).unwrap();
        b.add_input("C", vec![n.clone(), n.clone()]).unwrap();
        b.add_scalar("OUT").unwrap();
        let (i, j, k) = (SymExpr::sym("i"), SymExpr::sym("j"), SymExpr::sym("k"));
        b.for_range("i", 0, n.clone(), |b| {
            b.for_range("j", 0, i.add_int(1), |b| {
                b.assign_element(
                    "C",
                    vec![i.clone(), j.clone()],
                    elem("C", vec![i.clone(), j.clone()]).mul(lit(BETA)),
                );
            });
            b.for_range("k", 0, m.clone(), |b| {
                b.for_range("j", 0, i.add_int(1), |b| {
                    b.accumulate_element(
                        "C",
                        vec![i.clone(), j.clone()],
                        elem("A", vec![j.clone(), k.clone()])
                            .mul(elem("B", vec![i.clone(), k.clone()]))
                            .add(
                                elem("B", vec![j.clone(), k.clone()])
                                    .mul(elem("A", vec![i.clone(), k.clone()])),
                            )
                            .mul(lit(ALPHA)),
                    );
                });
            });
        });
        b.sum_into("OUT", "C", false);
        b.build().unwrap()
    }
    fn run_jax(&self, s: &Sizes, inputs: &HashMap<String, Tensor>) -> GradOutput {
        let ctx = Context::new();
        let a0 = ctx.input(inputs["A"].clone());
        let b0 = ctx.input(inputs["B"].clone());
        let c0 = ctx.input(inputs["C"].clone());
        let mut c = c0.clone();
        for i in 0..s.n {
            for j in 0..=i {
                let scaled = c.get_element(&[i, j]).scale(BETA);
                c = c.set_element(&[i, j], &scaled);
            }
            for k in 0..s.m {
                for j in 0..=i {
                    let contrib = a0
                        .get_element(&[j, k])
                        .mul(&b0.get_element(&[i, k]))
                        .add(&b0.get_element(&[j, k]).mul(&a0.get_element(&[i, k])))
                        .scale(ALPHA);
                    let updated = c.get_element(&[i, j]).add(&contrib);
                    c = c.set_element(&[i, j], &updated);
                }
            }
        }
        let out = c.sum();
        let grads = ctx.grad(&out, &[&a0, &b0, &c0]);
        GradOutput {
            output: out.value().data()[0],
            gradients: grad_map(&["A", "B", "C"], grads),
        }
    }
    fn jax_loc(&self) -> usize {
        13
    }
}

// ---------------------------------------------------------------------------
// trmm: triangular matrix multiply with in-place updates of B
// ---------------------------------------------------------------------------

struct Trmm;

impl Kernel for Trmm {
    fn name(&self) -> &'static str {
        "trmm"
    }
    fn category(&self) -> Category {
        Category::Loops
    }
    fn sizes(&self, preset: Preset) -> Sizes {
        match preset {
            Preset::Test => Sizes::new(5, 6, 0),
            Preset::Bench => Sizes::new(16, 18, 0),
        }
    }
    fn symbols(&self, s: &Sizes) -> HashMap<String, i64> {
        sym_map(&[("M", s.n), ("N", s.m)])
    }
    fn inputs(&self, s: &Sizes) -> HashMap<String, Tensor> {
        [
            ("A".to_string(), uniform_range(&[s.n, s.n], -1.0, 1.0, 40)),
            ("B".to_string(), uniform_range(&[s.n, s.m], -1.0, 1.0, 41)),
        ]
        .into_iter()
        .collect()
    }
    fn wrt(&self) -> Vec<&'static str> {
        vec!["A", "B"]
    }
    fn build_dace(&self, _s: &Sizes) -> Sdfg {
        let mut b = ProgramBuilder::new("trmm");
        let m = b.symbol("M");
        let n = b.symbol("N");
        b.add_input("A", vec![m.clone(), m.clone()]).unwrap();
        b.add_input("B", vec![m.clone(), n.clone()]).unwrap();
        b.add_scalar("OUT").unwrap();
        let (i, j, k) = (SymExpr::sym("i"), SymExpr::sym("j"), SymExpr::sym("k"));
        b.for_range("i", 0, m.clone(), |b| {
            b.for_range("j", 0, n.clone(), |b| {
                b.for_range("k", i.add_int(1), m.clone(), |b| {
                    b.accumulate_element(
                        "B",
                        vec![i.clone(), j.clone()],
                        elem("A", vec![k.clone(), i.clone()])
                            .mul(elem("B", vec![k.clone(), j.clone()])),
                    );
                });
                b.assign_element(
                    "B",
                    vec![i.clone(), j.clone()],
                    elem("B", vec![i.clone(), j.clone()]).mul(lit(ALPHA)),
                );
            });
        });
        b.sum_into("OUT", "B", false);
        b.build().unwrap()
    }
    fn run_jax(&self, s: &Sizes, inputs: &HashMap<String, Tensor>) -> GradOutput {
        let ctx = Context::new();
        let a0 = ctx.input(inputs["A"].clone());
        let b0 = ctx.input(inputs["B"].clone());
        let (m, n) = (s.n, s.m);
        let mut bb = b0.clone();
        for i in 0..m {
            for j in 0..n {
                let mut acc = bb.get_element(&[i, j]);
                for k in i + 1..m {
                    let term = a0.get_element(&[k, i]).mul(&bb.get_element(&[k, j]));
                    acc = acc.add(&term);
                }
                let scaled = acc.scale(ALPHA);
                bb = bb.set_element(&[i, j], &scaled);
            }
        }
        let out = bb.sum();
        let grads = ctx.grad(&out, &[&a0, &b0]);
        GradOutput {
            output: out.value().data()[0],
            gradients: grad_map(&["A", "B"], grads),
        }
    }
    fn jax_loc(&self) -> usize {
        10
    }
}

// ---------------------------------------------------------------------------
// conv2d: valid convolution with explicit loops
// ---------------------------------------------------------------------------

struct Conv2d;

const KSIZE: usize = 3;

impl Kernel for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }
    fn category(&self) -> Category {
        Category::Loops
    }
    fn sizes(&self, preset: Preset) -> Sizes {
        match preset {
            Preset::Test => Sizes::new(7, 0, 0),
            Preset::Bench => Sizes::new(22, 0, 0),
        }
    }
    fn symbols(&self, s: &Sizes) -> HashMap<String, i64> {
        sym_map(&[("N", s.n), ("K", KSIZE)])
    }
    fn inputs(&self, s: &Sizes) -> HashMap<String, Tensor> {
        [
            ("I".to_string(), uniform_range(&[s.n, s.n], -1.0, 1.0, 42)),
            (
                "W".to_string(),
                uniform_range(&[KSIZE, KSIZE], -1.0, 1.0, 43),
            ),
        ]
        .into_iter()
        .collect()
    }
    fn wrt(&self) -> Vec<&'static str> {
        vec!["I", "W"]
    }
    fn build_dace(&self, _s: &Sizes) -> Sdfg {
        let mut b = ProgramBuilder::new("conv2d");
        let n = b.symbol("N");
        let k = b.symbol("K");
        b.add_input("I", vec![n.clone(), n.clone()]).unwrap();
        b.add_input("W", vec![k.clone(), k.clone()]).unwrap();
        b.add_transient(
            "O",
            vec![
                n.sub(&SymExpr::int(KSIZE as i64 - 1)),
                n.sub(&SymExpr::int(KSIZE as i64 - 1)),
            ],
        )
        .unwrap();
        b.add_scalar("OUT").unwrap();
        let (i, j, ki, kj) = (
            SymExpr::sym("i"),
            SymExpr::sym("j"),
            SymExpr::sym("ki"),
            SymExpr::sym("kj"),
        );
        let out_dim = n.sub(&SymExpr::int(KSIZE as i64 - 1));
        b.for_range("i", 0, out_dim.clone(), |b| {
            b.for_range("j", 0, out_dim.clone(), |b| {
                b.for_range("ki", 0, k.clone(), |b| {
                    b.for_range("kj", 0, k.clone(), |b| {
                        b.accumulate_element(
                            "O",
                            vec![i.clone(), j.clone()],
                            elem("I", vec![i.add(&ki), j.add(&kj)])
                                .mul(elem("W", vec![ki.clone(), kj.clone()])),
                        );
                    });
                });
            });
        });
        b.sum_into("OUT", "O", false);
        b.build().unwrap()
    }
    fn run_jax(&self, s: &Sizes, inputs: &HashMap<String, Tensor>) -> GradOutput {
        let ctx = Context::new();
        let image = ctx.input(inputs["I"].clone());
        let weights = ctx.input(inputs["W"].clone());
        let out_dim = s.n - (KSIZE - 1);
        let mut o = ctx.input(Tensor::zeros(&[out_dim, out_dim]));
        for i in 0..out_dim {
            for j in 0..out_dim {
                let window = image.dynamic_slice(&[i, j], &[KSIZE, KSIZE]);
                let v = window.mul(&weights).sum();
                o = o.set_element(&[i, j], &v);
            }
        }
        let out = o.sum();
        let grads = ctx.grad(&out, &[&image, &weights]);
        GradOutput {
            output: out.value().data()[0],
            gradients: grad_map(&["I", "W"], grads),
        }
    }
    fn jax_loc(&self) -> usize {
        7
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_registry_is_populated() {
        let ks = kernels();
        assert_eq!(ks.len(), 6);
        for k in &ks {
            assert_eq!(k.category(), Category::Loops);
            let sizes = k.sizes(Preset::Test);
            let sdfg = k.build_dace(&sizes);
            sdfg.validate_strict().unwrap();
            assert!(sdfg.arrays.contains_key("OUT"));
        }
    }
}
