//! # npbench
//!
//! An NPBench-style kernel suite for the DaCe AD reproduction.  Every kernel
//! is implemented twice:
//!
//! * as a DaCe-frontend program (NumPy-style statements lowered to an SDFG
//!   and differentiated by `dace-ad`), and
//! * as a jax-rs traced function (immutable arrays, dynamic slices,
//!   `fori_loop`, store-all tape).
//!
//! Both sides consume bit-identical seeded inputs, append the same sum
//! reduction to obtain a scalar dependent variable (as §V-A of the paper
//! does), and their gradients are cross-validated with `allclose` in the test
//! suite.  The benchmark harness (`dace-bench`) times both to regenerate the
//! paper's figures.

#![forbid(unsafe_code)]

pub mod loops;
pub mod runner;
pub mod vectorized;

use std::collections::HashMap;

use dace_sdfg::Sdfg;
use dace_tensor::Tensor;

/// Benchmark category (mirrors the split of the paper's evaluation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Category {
    /// Whole-array programs dominated by BLAS-style operations (Fig. 10).
    Vectorized,
    /// Programs with sequential loops, control flow and element accesses
    /// (Fig. 11).
    Loops,
}

/// Problem-size preset.
///
/// `Test` sizes are used by the cross-validation test suite; `Bench` sizes by
/// the benchmark harness.  The paper's "paper" NPBench sizes are scaled down
/// so every configuration completes in seconds under the SDFG interpreter
/// (documented substitution, see DESIGN.md §4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Preset {
    /// Tiny sizes for gradient cross-validation.
    Test,
    /// Scaled benchmark sizes.
    Bench,
}

/// Concrete problem sizes for one kernel instance.
#[derive(Clone, Debug, Default)]
pub struct Sizes {
    /// Primary dimension.
    pub n: usize,
    /// Secondary dimension.
    pub m: usize,
    /// Time steps (stencil kernels).
    pub tsteps: usize,
}

impl Sizes {
    /// Construct sizes.
    pub fn new(n: usize, m: usize, tsteps: usize) -> Self {
        Sizes { n, m, tsteps }
    }
}

/// Result of running one side (DaCe AD or jax-rs) of a kernel.
#[derive(Clone, Debug)]
pub struct GradOutput {
    /// Scalar value of the dependent output.
    pub output: f64,
    /// Gradients of the requested inputs, keyed by array name.
    pub gradients: HashMap<String, Tensor>,
}

/// A kernel implemented on both systems.
pub trait Kernel: Sync {
    /// NPBench kernel name.
    fn name(&self) -> &'static str;
    /// Category of the kernel.
    fn category(&self) -> Category;
    /// Sizes for a preset.
    fn sizes(&self, preset: Preset) -> Sizes;
    /// SDFG symbol values for the given sizes.
    fn symbols(&self, s: &Sizes) -> HashMap<String, i64>;
    /// Seeded input tensors.
    fn inputs(&self, s: &Sizes) -> HashMap<String, Tensor>;
    /// The DaCe forward program (with the sum reduction writing `OUT`).
    fn build_dace(&self, s: &Sizes) -> Sdfg;
    /// The independent variables to differentiate with respect to.
    fn wrt(&self) -> Vec<&'static str>;
    /// Run the jax-rs side: forward value plus gradients of `wrt`.
    fn run_jax(&self, s: &Sizes, inputs: &HashMap<String, Tensor>) -> GradOutput;
    /// Number of forward-pass statements in the jax-rs implementation
    /// (counted as traced-op construction sites; the Fig. 11 program-size
    /// proxy together with the DaCe builder's statement count).
    fn jax_loc(&self) -> usize {
        0
    }
}

/// Registry of all kernels.
pub fn all_kernels() -> Vec<Box<dyn Kernel>> {
    let mut v = vectorized::kernels();
    v.extend(loops::kernels());
    v
}

/// Kernels of one category.
pub fn kernels_in(category: Category) -> Vec<Box<dyn Kernel>> {
    all_kernels()
        .into_iter()
        .filter(|k| k.category() == category)
        .collect()
}

/// Look a kernel up by name.
pub fn kernel_by_name(name: &str) -> Option<Box<dyn Kernel>> {
    all_kernels().into_iter().find(|k| k.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_dace_gradients;

    #[test]
    fn registry_has_both_categories() {
        let all = all_kernels();
        assert!(all.len() >= 12, "expected a substantial kernel suite");
        assert!(all.iter().any(|k| k.category() == Category::Vectorized));
        assert!(all.iter().any(|k| k.category() == Category::Loops));
        // Names are unique.
        let mut names: Vec<_> = all.iter().map(|k| k.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn kernel_lookup_by_name() {
        assert!(kernel_by_name("atax").is_some());
        assert!(kernel_by_name("seidel2d").is_some());
        assert!(kernel_by_name("not_a_kernel").is_none());
    }

    /// The §V-A validation: DaCe AD gradients match the jax-rs baseline
    /// gradients (np.allclose) for every kernel at test sizes.
    #[test]
    fn cross_validate_all_kernels() {
        for kernel in all_kernels() {
            let sizes = kernel.sizes(Preset::Test);
            let inputs = kernel.inputs(&sizes);
            let dace = run_dace_gradients(kernel.as_ref(), &sizes, &inputs)
                .unwrap_or_else(|e| panic!("{}: DaCe AD failed: {e}", kernel.name()));
            let jax = kernel.run_jax(&sizes, &inputs);
            assert!(
                (dace.output - jax.output).abs() <= 1e-6 * (1.0 + jax.output.abs()),
                "{}: forward outputs differ: dace={} jax={}",
                kernel.name(),
                dace.output,
                jax.output
            );
            for name in kernel.wrt() {
                let a = &dace.gradients[name];
                let b = &jax.gradients[name];
                assert!(
                    dace_tensor::allclose(a, b, 1e-5, 1e-7),
                    "{}: gradient of {name} differs",
                    kernel.name()
                );
            }
        }
    }
}
