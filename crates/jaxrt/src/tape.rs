//! Tape-based reverse-mode AD over immutable functional arrays.
//!
//! This is the JAX-JIT stand-in the paper compares against (see `DESIGN.md`).
//! It reproduces the mechanisms Section V-B identifies as the source of JAX's
//! overhead on scientific codes:
//!
//! * **Immutability** — there is no in-place update; `dynamic_update_slice`
//!   allocates a brand-new full-size array per call, and its adjoint
//!   materialises another full-size array per call.
//! * **Dynamic slicing** — `dynamic_slice` clamps its start indices and
//!   copies the slice out; its adjoint pads the slice gradient back into a
//!   full-size zero array.
//! * **Store-all tape** — every primitive's inputs/outputs stay alive on the
//!   tape until the backward pass (the default store-all strategy).
//! * **`fori_loop`** — loops are expressed as a traced helper whose carries
//!   are whole arrays, so every iteration appends full-array operations to
//!   the tape.

use std::cell::RefCell;
use std::rc::Rc;

use dace_tensor::slice::DimRange;
use dace_tensor::Tensor;

/// Primitive operations recorded on the tape.
#[derive(Clone, Debug)]
enum Prim {
    /// Leaf (input or constant) — no adjoint propagation.
    Leaf,
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Div(usize, usize),
    Neg(usize),
    Sin(usize),
    Cos(usize),
    Exp(usize),
    Log(usize),
    Sqrt(usize),
    Tanh(usize),
    Relu(usize),
    Sigmoid(usize),
    Scale(usize, f64),
    AddScalar(usize),
    Pow(usize, f64),
    MatMul(usize, usize),
    MatVec(usize, usize),
    Transpose(usize),
    Sum(usize),
    Reshape(usize),
    /// `dynamic_slice(src, start, sizes)`
    DynamicSlice {
        src: usize,
        start: Vec<usize>,
    },
    /// `dynamic_update_slice(dst, patch, start)`
    DynamicUpdateSlice {
        dst: usize,
        patch: usize,
        start: Vec<usize>,
    },
}

struct Node {
    prim: Prim,
    value: Tensor,
}

/// The global trace: values plus the primitive that produced each of them.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    /// Count of full-array materialisations (used by the benchmark harness to
    /// report the overhead the paper describes for Seidel2d).
    pub materializations: usize,
}

/// A traced value: an index into a shared tape.
#[derive(Clone)]
pub struct Var {
    tape: Rc<RefCell<Tape>>,
    index: usize,
}

/// A tracing context that owns the tape.
#[derive(Clone, Default)]
pub struct Context {
    tape: Rc<RefCell<Tape>>,
}

impl Context {
    /// Create an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes recorded so far.
    pub fn tape_len(&self) -> usize {
        self.tape.borrow().nodes.len()
    }

    /// Total bytes held alive by the tape (the store-all footprint).
    pub fn tape_bytes(&self) -> usize {
        self.tape
            .borrow()
            .nodes
            .iter()
            .map(|n| n.value.size_bytes())
            .sum()
    }

    /// Number of full-array materialisations recorded.
    pub fn materializations(&self) -> usize {
        self.tape.borrow().materializations
    }

    /// Introduce a leaf value (program input or constant array).
    pub fn input(&self, value: Tensor) -> Var {
        self.record(Prim::Leaf, value)
    }

    /// Introduce a scalar constant.
    pub fn scalar(&self, value: f64) -> Var {
        self.input(Tensor::from_vec(vec![value], &[1]).expect("scalar"))
    }

    fn record(&self, prim: Prim, value: Tensor) -> Var {
        let mut tape = self.tape.borrow_mut();
        tape.nodes.push(Node { prim, value });
        Var {
            tape: Rc::clone(&self.tape),
            index: tape.nodes.len() - 1,
        }
    }

    /// A JAX-style `fori_loop`: `carry = body(i, carry)` for `i` in
    /// `lower..upper`.  Each iteration traces its operations onto the tape
    /// (store-all), like `jax.lax.scan`/`fori_loop` under `grad`.
    pub fn fori_loop<T>(
        &self,
        lower: i64,
        upper: i64,
        carry: T,
        mut body: impl FnMut(i64, T) -> T,
    ) -> T {
        let mut c = carry;
        let mut i = lower;
        while i < upper {
            c = body(i, c);
            i += 1;
        }
        c
    }

    /// Reverse-mode gradient of the scalar `output` with respect to `inputs`.
    ///
    /// The output must hold exactly one element.  Uses the store-all tape:
    /// every intermediate value recorded during tracing is read back.
    pub fn grad(&self, output: &Var, inputs: &[&Var]) -> Vec<Tensor> {
        let tape = self.tape.borrow();
        let n = tape.nodes.len();
        let mut adjoints: Vec<Option<Tensor>> = vec![None; n];
        let out_shape = tape.nodes[output.index].value.shape().to_vec();
        adjoints[output.index] = Some(Tensor::ones(&out_shape));

        for idx in (0..=output.index).rev() {
            let Some(grad_out) = adjoints[idx].clone() else {
                continue;
            };
            let node = &tape.nodes[idx];
            let add = |target: usize, contribution: Tensor, adjoints: &mut Vec<Option<Tensor>>| {
                match &mut adjoints[target] {
                    Some(existing) => {
                        existing.add_assign(&contribution).expect("same shape");
                    }
                    slot @ None => *slot = Some(contribution),
                }
            };
            match &node.prim {
                Prim::Leaf => {}
                Prim::Add(a, b) => {
                    add(*a, grad_out.clone(), &mut adjoints);
                    add(*b, grad_out, &mut adjoints);
                }
                Prim::Sub(a, b) => {
                    add(*a, grad_out.clone(), &mut adjoints);
                    add(*b, grad_out.scale(-1.0), &mut adjoints);
                }
                Prim::Mul(a, b) => {
                    let va = tape.nodes[*a].value.clone();
                    let vb = tape.nodes[*b].value.clone();
                    add(*a, grad_out.mul(&vb).unwrap(), &mut adjoints);
                    add(*b, grad_out.mul(&va).unwrap(), &mut adjoints);
                }
                Prim::Div(a, b) => {
                    let va = tape.nodes[*a].value.clone();
                    let vb = tape.nodes[*b].value.clone();
                    add(*a, grad_out.div(&vb).unwrap(), &mut adjoints);
                    let gb = grad_out
                        .mul(&va)
                        .unwrap()
                        .div(&vb.mul(&vb).unwrap())
                        .unwrap()
                        .scale(-1.0);
                    add(*b, gb, &mut adjoints);
                }
                Prim::Neg(a) => add(*a, grad_out.scale(-1.0), &mut adjoints),
                Prim::Sin(a) => {
                    let va = tape.nodes[*a].value.map(f64::cos);
                    add(*a, grad_out.mul(&va).unwrap(), &mut adjoints);
                }
                Prim::Cos(a) => {
                    let va = tape.nodes[*a].value.map(|x| -x.sin());
                    add(*a, grad_out.mul(&va).unwrap(), &mut adjoints);
                }
                Prim::Exp(a) => {
                    let va = tape.nodes[*a].value.map(f64::exp);
                    add(*a, grad_out.mul(&va).unwrap(), &mut adjoints);
                }
                Prim::Log(a) => {
                    let va = tape.nodes[*a].value.map(|x| 1.0 / x);
                    add(*a, grad_out.mul(&va).unwrap(), &mut adjoints);
                }
                Prim::Sqrt(a) => {
                    let va = tape.nodes[*a].value.map(|x| 0.5 / x.sqrt());
                    add(*a, grad_out.mul(&va).unwrap(), &mut adjoints);
                }
                Prim::Tanh(a) => {
                    let va = tape.nodes[*a].value.map(|x| 1.0 - x.tanh() * x.tanh());
                    add(*a, grad_out.mul(&va).unwrap(), &mut adjoints);
                }
                Prim::Relu(a) => {
                    let va = tape.nodes[*a]
                        .value
                        .map(|x| if x > 0.0 { 1.0 } else { 0.0 });
                    add(*a, grad_out.mul(&va).unwrap(), &mut adjoints);
                }
                Prim::Sigmoid(a) => {
                    let va = tape.nodes[*a].value.map(|x| {
                        let s = 1.0 / (1.0 + (-x).exp());
                        s * (1.0 - s)
                    });
                    add(*a, grad_out.mul(&va).unwrap(), &mut adjoints);
                }
                Prim::Scale(a, k) => add(*a, grad_out.scale(*k), &mut adjoints),
                Prim::AddScalar(a) => add(*a, grad_out, &mut adjoints),
                Prim::Pow(a, e) => {
                    let va = tape.nodes[*a].value.map(|x| e * x.powf(e - 1.0));
                    add(*a, grad_out.mul(&va).unwrap(), &mut adjoints);
                }
                Prim::MatMul(a, b) => {
                    let va = tape.nodes[*a].value.clone();
                    let vb = tape.nodes[*b].value.clone();
                    add(
                        *a,
                        grad_out.matmul(&vb.transpose().unwrap()).unwrap(),
                        &mut adjoints,
                    );
                    add(
                        *b,
                        va.transpose().unwrap().matmul(&grad_out).unwrap(),
                        &mut adjoints,
                    );
                }
                Prim::MatVec(a, x) => {
                    let va = tape.nodes[*a].value.clone();
                    let vx = tape.nodes[*x].value.clone();
                    add(*a, grad_out.outer(&vx).unwrap(), &mut adjoints);
                    add(
                        *x,
                        va.transpose().unwrap().matvec(&grad_out).unwrap(),
                        &mut adjoints,
                    );
                }
                Prim::Transpose(a) => {
                    add(*a, grad_out.transpose().unwrap(), &mut adjoints);
                }
                Prim::Sum(a) => {
                    let shape = tape.nodes[*a].value.shape().to_vec();
                    let g = grad_out.data()[0];
                    add(*a, Tensor::full(&shape, g), &mut adjoints);
                }
                Prim::Reshape(a) => {
                    let shape = tape.nodes[*a].value.shape().to_vec();
                    add(*a, grad_out.reshape(&shape).unwrap(), &mut adjoints);
                }
                Prim::DynamicSlice { src, start } => {
                    // Pad the slice gradient back into a full-size zero array —
                    // a full materialisation per call, as in XLA.
                    let full_shape = tape.nodes[*src].value.shape().to_vec();
                    let zeros = Tensor::zeros(&full_shape);
                    let padded = zeros.update_slice(start, &grad_out).unwrap();
                    add(*src, padded, &mut adjoints);
                }
                Prim::DynamicUpdateSlice { dst, patch, start } => {
                    let patch_shape = tape.nodes[*patch].value.shape().to_vec();
                    let ranges: Vec<DimRange> = start
                        .iter()
                        .zip(patch_shape.iter())
                        .map(|(&s, &len)| DimRange::new(s, s + len))
                        .collect();
                    // Gradient of the patch: the slice of the output gradient.
                    add(*patch, grad_out.slice(&ranges).unwrap(), &mut adjoints);
                    // Gradient of the original array: the output gradient with
                    // the patch region zeroed — another full materialisation.
                    let zero_patch = Tensor::zeros(&patch_shape);
                    let masked = grad_out.update_slice(start, &zero_patch).unwrap();
                    add(*dst, masked, &mut adjoints);
                }
            }
        }
        drop(tape);
        inputs
            .iter()
            .map(|v| {
                adjoints[v.index].clone().unwrap_or_else(|| {
                    Tensor::zeros(self.tape.borrow().nodes[v.index].value.shape())
                })
            })
            .collect()
    }
}

macro_rules! unary_op {
    ($name:ident, $prim:ident, $f:expr) => {
        /// Element-wise operation recorded on the tape.
        pub fn $name(&self) -> Var {
            let value = self.value().map($f);
            self.ctx().record(Prim::$prim(self.index), value)
        }
    };
}

impl Var {
    fn ctx(&self) -> Context {
        Context {
            tape: Rc::clone(&self.tape),
        }
    }

    /// The current value of this traced variable.
    pub fn value(&self) -> Tensor {
        self.tape.borrow().nodes[self.index].value.clone()
    }

    /// Shape of the value.
    pub fn shape(&self) -> Vec<usize> {
        self.tape.borrow().nodes[self.index].value.shape().to_vec()
    }

    fn binary(
        &self,
        other: &Var,
        prim: fn(usize, usize) -> Prim,
        f: impl Fn(&Tensor, &Tensor) -> Tensor,
    ) -> Var {
        let value = f(&self.value(), &other.value());
        self.ctx().record(prim(self.index, other.index), value)
    }

    /// `self + other`
    pub fn add(&self, other: &Var) -> Var {
        self.binary(other, Prim::Add, |a, b| a.add(b).expect("shape"))
    }

    /// `self - other`
    pub fn sub(&self, other: &Var) -> Var {
        self.binary(other, Prim::Sub, |a, b| a.sub(b).expect("shape"))
    }

    /// `self * other` (element-wise)
    pub fn mul(&self, other: &Var) -> Var {
        self.binary(other, Prim::Mul, |a, b| a.mul(b).expect("shape"))
    }

    /// `self / other` (element-wise)
    pub fn div(&self, other: &Var) -> Var {
        self.binary(other, Prim::Div, |a, b| a.div(b).expect("shape"))
    }

    /// Scalar multiple.
    pub fn scale(&self, k: f64) -> Var {
        let value = self.value().scale(k);
        self.ctx().record(Prim::Scale(self.index, k), value)
    }

    /// Add a scalar.
    pub fn add_scalar(&self, k: f64) -> Var {
        let value = self.value().add_scalar(k);
        self.ctx().record(Prim::AddScalar(self.index), value)
    }

    /// Element-wise power with a constant exponent.
    pub fn pow(&self, e: f64) -> Var {
        let value = self.value().map(|x| x.powf(e));
        self.ctx().record(Prim::Pow(self.index, e), value)
    }

    unary_op!(neg, Neg, |x| -x);
    unary_op!(sin, Sin, f64::sin);
    unary_op!(cos, Cos, f64::cos);
    unary_op!(exp, Exp, f64::exp);
    unary_op!(log, Log, f64::ln);
    unary_op!(sqrt, Sqrt, f64::sqrt);
    unary_op!(tanh, Tanh, f64::tanh);
    unary_op!(relu, Relu, |x| if x > 0.0 { x } else { 0.0 });
    unary_op!(sigmoid, Sigmoid, |x| 1.0 / (1.0 + (-x).exp()));

    /// Matrix-matrix product.
    pub fn matmul(&self, other: &Var) -> Var {
        self.binary(other, Prim::MatMul, |a, b| a.matmul(b).expect("shape"))
    }

    /// Matrix-vector product.
    pub fn matvec(&self, other: &Var) -> Var {
        self.binary(other, Prim::MatVec, |a, b| a.matvec(b).expect("shape"))
    }

    /// 2-D transpose.
    pub fn transpose(&self) -> Var {
        let value = self.value().transpose().expect("2-D");
        self.ctx().record(Prim::Transpose(self.index), value)
    }

    /// Full sum reduction to a `[1]`-shaped value.
    pub fn sum(&self) -> Var {
        let value = Tensor::from_vec(vec![self.value().sum()], &[1]).unwrap();
        self.ctx().record(Prim::Sum(self.index), value)
    }

    /// `lax.dynamic_slice`: copy out a rectangular region with clamped start
    /// indices (every call copies).
    pub fn dynamic_slice(&self, start: &[usize], sizes: &[usize]) -> Var {
        let value = self.value();
        // Clamp start indices like XLA.
        let clamped: Vec<usize> = start
            .iter()
            .zip(value.shape().iter().zip(sizes.iter()))
            .map(|(&s, (&dim, &len))| s.min(dim.saturating_sub(len)))
            .collect();
        let ranges: Vec<DimRange> = clamped
            .iter()
            .zip(sizes.iter())
            .map(|(&s, &len)| DimRange::new(s, s + len))
            .collect();
        let out = value.slice(&ranges).expect("slice in bounds");
        {
            let mut tape = self.tape.borrow_mut();
            tape.materializations += 1;
        }
        self.ctx().record(
            Prim::DynamicSlice {
                src: self.index,
                start: clamped,
            },
            out,
        )
    }

    /// `lax.dynamic_update_slice`: produce a brand-new full-size array with
    /// the patch written at `start` (immutability: the original is untouched).
    pub fn dynamic_update_slice(&self, patch: &Var, start: &[usize]) -> Var {
        let value = self.value();
        let out = value
            .update_slice(start, &patch.value())
            .expect("in bounds");
        {
            let mut tape = self.tape.borrow_mut();
            tape.materializations += 1;
        }
        self.ctx().record(
            Prim::DynamicUpdateSlice {
                dst: self.index,
                patch: patch.index,
                start: start.to_vec(),
            },
            out,
        )
    }

    /// Read one element (convenience wrapper over `dynamic_slice`).
    pub fn get_element(&self, index: &[usize]) -> Var {
        let sizes = vec![1; index.len()];
        self.dynamic_slice(index, &sizes).sum()
    }

    /// Write one element (convenience wrapper over `dynamic_update_slice`).
    pub fn set_element(&self, index: &[usize], value: &Var) -> Var {
        let shape = vec![1; index.len()];
        let reshaped = value.reshape(&shape);
        self.dynamic_update_slice(&reshaped, index)
    }

    /// Reshape (same data order; the adjoint reshapes the gradient back).
    pub fn reshape(&self, shape: &[usize]) -> Var {
        let value = self.value().reshape(shape).expect("same volume");
        self.ctx().record(Prim::Reshape(self.index), value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dace_tensor::random::uniform;

    #[test]
    fn elementwise_gradients_match_analytic() {
        let ctx = Context::new();
        let x = ctx.input(uniform(&[8], 1));
        let y = ctx.input(uniform(&[8], 2));
        // out = sum(sin(x * y))
        let out = x.mul(&y).sin().sum();
        let grads = ctx.grad(&out, &[&x, &y]);
        let expected_x = x
            .value()
            .mul(&y.value())
            .unwrap()
            .map(f64::cos)
            .mul(&y.value())
            .unwrap();
        assert!(dace_tensor::allclose_default(&grads[0], &expected_x));
    }

    #[test]
    fn matmul_gradient_matches_fd() {
        let ctx = Context::new();
        let a = ctx.input(uniform(&[4, 3], 3));
        let b = ctx.input(uniform(&[3, 5], 4));
        let out = a.matmul(&b).sum();
        let grads = ctx.grad(&out, &[&a, &b]);
        // d sum(A@B) / dA = rowwise sums of B  => grad_A[i,k] = sum_j B[k,j]
        let ones = Tensor::ones(&[4, 5]);
        let expected_a = ones.matmul(&b.value().transpose().unwrap()).unwrap();
        let expected_b = a.value().transpose().unwrap().matmul(&ones).unwrap();
        assert!(dace_tensor::allclose_default(&grads[0], &expected_a));
        assert!(dace_tensor::allclose_default(&grads[1], &expected_b));
    }

    #[test]
    fn dynamic_update_slice_is_immutable_and_differentiable() {
        let ctx = Context::new();
        let a = ctx.input(Tensor::zeros(&[3, 3]));
        let patch = ctx.input(Tensor::ones(&[1, 1]));
        let b = a.dynamic_update_slice(&patch, &[1, 1]);
        // a unchanged (immutability)
        assert_eq!(a.value().sum(), 0.0);
        assert_eq!(b.value().sum(), 1.0);
        let out = b.mul(&b).sum();
        let grads = ctx.grad(&out, &[&patch, &a]);
        assert_eq!(grads[0].data()[0], 2.0); // d(p^2)/dp = 2p = 2
        assert_eq!(grads[1].at(&[1, 1]).unwrap(), 0.0); // overwritten element
    }

    #[test]
    fn dynamic_slice_gradient_pads_back() {
        let ctx = Context::new();
        let a = ctx.input(uniform(&[5], 5));
        let s = a.dynamic_slice(&[2], &[2]);
        let out = s.sum();
        let grads = ctx.grad(&out, &[&a]);
        assert_eq!(grads[0].data(), &[0.0, 0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn fori_loop_traces_every_iteration() {
        let ctx = Context::new();
        let x = ctx.input(uniform(&[4], 6));
        let before = ctx.tape_len();
        let y = ctx.fori_loop(0, 10, x.clone(), |_, c| c.scale(1.1));
        assert_eq!(
            ctx.tape_len(),
            before + 10,
            "store-all: one node per iteration"
        );
        let out = y.sum();
        let grads = ctx.grad(&out, &[&x]);
        let expected = 1.1f64.powi(10);
        assert!(grads[0].data().iter().all(|&g| (g - expected).abs() < 1e-9));
    }

    #[test]
    fn in_place_style_loop_materializes_full_arrays() {
        // A[i] = A[i] * 2 for each i, expressed with JAX-style immutable updates.
        let ctx = Context::new();
        let a = ctx.input(uniform(&[6], 7));
        let result = ctx.fori_loop(0, 6, a.clone(), |i, c| {
            let elem = c.dynamic_slice(&[i as usize], &[1]);
            let doubled = elem.scale(2.0);
            c.dynamic_update_slice(&doubled, &[i as usize])
        });
        // 2 materialisations per iteration (slice + update).
        assert_eq!(ctx.materializations(), 12);
        let out = result.sum();
        let grads = ctx.grad(&out, &[&a]);
        assert!(grads[0].data().iter().all(|&g| (g - 2.0).abs() < 1e-12));
    }

    #[test]
    fn sum_and_scalar_chain() {
        let ctx = Context::new();
        let x = ctx.input(Tensor::from_vec(vec![2.0], &[1]).unwrap());
        let out = x.pow(3.0).scale(2.0).add_scalar(1.0).sum();
        assert_eq!(out.value().data()[0], 17.0);
        let grads = ctx.grad(&out, &[&x]);
        assert_eq!(grads[0].data()[0], 24.0); // d(2x^3)/dx = 6x^2 = 24
    }

    #[test]
    fn unused_input_gets_zero_gradient() {
        let ctx = Context::new();
        let x = ctx.input(uniform(&[3], 8));
        let y = ctx.input(uniform(&[3], 9));
        let out = x.sum();
        let grads = ctx.grad(&out, &[&x, &y]);
        assert!(grads[1].data().iter().all(|&g| g == 0.0));
    }
}
