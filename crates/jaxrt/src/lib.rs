//! # jax-rs
//!
//! A JAX-like baseline: immutable functional arrays with tape-based
//! reverse-mode automatic differentiation.  This crate substitutes for the
//! JAX JIT comparator of the paper's evaluation (see `DESIGN.md` §4); it
//! deliberately reproduces the overheads Section V-B attributes to JAX on
//! scientific codes — array immutability, dynamic slicing with clamped
//! bounds, per-call full-array materialisation, and a store-all tape.

pub mod tape;

pub use tape::{Context, Tape, Var};
