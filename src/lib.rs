//! # dace-ad-repro
//!
//! Umbrella crate for the Rust reproduction of *DaCe AD: Unifying
//! High-Performance Automatic Differentiation for Machine Learning and
//! Scientific Computing* (CLUSTER 2025).
//!
//! It re-exports the public API of every workspace crate so examples and
//! integration tests can `use dace_ad_repro::prelude::*;`.

pub use dace_ad as ad;
pub use dace_frontend as frontend;
pub use dace_ilp as ilp;
pub use dace_runtime as runtime;
pub use dace_sdfg as sdfg;
pub use dace_tensor as tensor;
pub use jax_rs as jax;
pub use npbench;

/// Convenience re-exports for examples and integration tests.
pub mod prelude {
    pub use dace_ad::{
        AdOptions, BackwardPlan, BatchGradientResult, CheckpointStrategy, EngineError,
        GatewayGradientClient, GatewayGradientHandle, GradientEngine, GradientHandle,
        GradientServer, ServedGradient,
    };
    pub use dace_frontend::{ArrayExpr, ProgramBuilder, ScalarRef};
    #[allow(deprecated)]
    pub use dace_runtime::Executor;
    pub use dace_runtime::{
        compile, BatchDriver, BatchError, BatchItemResult, BatchOutput, BatchReport, BreakerState,
        CompiledProgram, ExecutionReport, FaultPlan, Gateway, GatewayError, GatewayHandle,
        GatewayOptions, GatewayStats, PlanCacheStats, RequestHandle, ServeDriver, ServeError,
        ServeOptions, ServeResponse, ServeStats, Session, SubmitOptions, TenantConfig, TenantStats,
    };
    pub use dace_sdfg::{DType, Sdfg, SymExpr};
    pub use dace_tensor::{allclose, allclose_default, Tensor};
}
