#!/usr/bin/env bash
# Check that every relative markdown link in the repo's *.md files points at
# a file or directory that exists.  External links (http/https/mailto) and
# pure in-page anchors (#...) are skipped; an anchor suffix on a relative
# link is stripped before the existence check.  Exits non-zero listing every
# broken link.  Plain grep/sed, no dependencies — run from the repo root.
set -u

fail=0
# Markdown files tracked by git (falls back to find outside a checkout).
if files=$(git ls-files '*.md' 2>/dev/null) && [ -n "$files" ]; then
    :
else
    files=$(find . -name '*.md' -not -path './target/*' | sed 's|^\./||')
fi

for f in $files; do
    dir=$(dirname "$f")
    # Inline links: capture the (...) target of ](...), one per line.
    links=$(grep -oE '\]\([^)]+\)' "$f" | sed -e 's/^](//' -e 's/)$//')
    for link in $links; do
        case "$link" in
        http://* | https://* | mailto:* | '#'*) continue ;;
        esac
        target=${link%%#*} # strip any anchor suffix
        [ -n "$target" ] || continue
        if [ ! -e "$dir/$target" ]; then
            echo "$f: broken relative link -> $link"
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "markdown link check FAILED"
    exit 1
fi
echo "markdown link check OK"
