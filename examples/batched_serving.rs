//! Batched concurrent serving over one shared compiled plan.
//!
//! Models the serving shape the runtime is built for: many users submit
//! independent requests against the *same* program, which is compiled once
//! and amortised across every request.  Two layers are shown:
//!
//! 1. `BatchDriver` — raw runtime serving of a forward program, and
//! 2. `GradientEngine::run_batch` — batched gradient serving (N input sets
//!    in, N gradient maps out) over the engine's cached gradient program.
//!
//! Run with: `cargo run --release --example batched_serving`

use std::collections::HashMap;

use dace_ad_repro::prelude::*;
use dace_ad_repro::tensor::Tensor;

fn main() {
    // A small "model": OUT = sum(sin(W * X)) with parameters W and input X.
    let mut b = ProgramBuilder::new("model");
    let n = b.symbol("N");
    b.add_input("W", vec![n.clone()]).unwrap();
    b.add_input("X", vec![n.clone()]).unwrap();
    b.add_transient("T", vec![n.clone()]).unwrap();
    b.add_scalar("OUT").unwrap();
    b.assign("T", ArrayExpr::a("W").mul(ArrayExpr::a("X")).sin());
    b.sum_into("OUT", "T", false);
    let sdfg = b.build().unwrap();
    let symbols: HashMap<String, i64> = HashMap::from([("N".to_string(), 256)]);

    let n_items = 16usize;
    let request = |i: usize| -> HashMap<String, Tensor> {
        let w: Vec<f64> = (0..256).map(|j| ((j % 17) as f64) * 0.05).collect();
        let x: Vec<f64> = (0..256).map(|j| (i * 7 + j) as f64 * 0.01).collect();
        HashMap::from([
            ("W".to_string(), Tensor::from_vec(w, &[256]).unwrap()),
            ("X".to_string(), Tensor::from_vec(x, &[256]).unwrap()),
        ])
    };
    let requests: Vec<_> = (0..n_items).map(request).collect();

    // --- Layer 1: raw forward serving through BatchDriver. ----------------
    let program = compile(&sdfg, &symbols).unwrap();
    let driver = BatchDriver::new(program);
    driver.warm(4); // pre-create sessions off the serving path
    let out = driver.run_batch(&requests, &["OUT"]);
    println!("forward serving: {n_items} requests over one compiled plan");
    println!(
        "  {:.0} items/sec on {} worker(s), {} tasklet evals total",
        out.report.items_per_sec.unwrap_or(f64::NAN),
        out.report.workers,
        out.report.total_tasklet_invocations
    );
    println!(
        "  plan cache: {} hit(s), {} miss(es) — lowered once, shared by every session",
        out.report.plan_cache.hits, out.report.plan_cache.misses
    );
    assert_eq!(out.report.succeeded, n_items);
    assert_eq!(out.report.plan_cache.misses, 1);

    // Steady state: the warm pool serves later batches without creating
    // sessions or touching the plan cache.
    let again = driver.run_batch(&requests, &["OUT"]);
    println!(
        "  steady state: sessions_created={} (plateaued), sessions_reused={}",
        again.report.sessions_created, again.report.sessions_reused
    );

    // --- Layer 2: batched gradient serving through the engine. ------------
    let mut engine =
        GradientEngine::new(&sdfg, "OUT", &["W"], &symbols, &AdOptions::default()).unwrap();
    let batch = engine.run_batch(&requests).unwrap();
    println!(
        "\ngradient serving: {n_items} input sets -> {} gradient maps",
        batch.items.len()
    );
    println!(
        "  {:.0} items/sec on {} worker(s); gradient program lowered {} time(s)",
        batch.batch.items_per_sec.unwrap_or(f64::NAN),
        batch.batch.workers,
        batch.batch.plan_cache.misses
    );

    // Batched results are bit-identical to serial engine runs.
    let serial = engine.run(&requests[3]).unwrap();
    let batched = &batch.items[3];
    assert_eq!(
        serial.output_value.to_bits(),
        batched.output_value.to_bits()
    );
    for (name, g) in &serial.gradients {
        let bg = &batched.gradients[name];
        assert!(g.data().iter().zip(bg.data()).all(|(a, b)| a == b));
    }
    println!("  determinism check: batched item 3 is bit-identical to a serial run");
}
