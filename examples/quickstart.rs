//! Quickstart: write a NumPy-style program, differentiate it with DaCe AD,
//! and validate the gradient against finite differences.
//!
//! Execution follows the compile-once model: `compile` lowers an SDFG into
//! a `CompiledProgram` (cached process-wide), a `Session` runs it as many
//! times as needed, and `GradientEngine` does the same for the gradient
//! program.
//!
//! Run with `cargo run --release --example quickstart`.

use std::collections::HashMap;

use dace_ad_repro::prelude::*;

fn main() {
    // OUT = sum(sin(X * Y) + 2 * X)   for X, Y of size N
    let mut builder = ProgramBuilder::new("quickstart");
    let n = builder.symbol("N");
    builder.add_input("X", vec![n.clone()]).unwrap();
    builder.add_input("Y", vec![n.clone()]).unwrap();
    builder.add_transient("T", vec![n.clone()]).unwrap();
    builder.add_scalar("OUT").unwrap();
    builder.assign(
        "T",
        ArrayExpr::a("X")
            .mul(ArrayExpr::a("Y"))
            .sin()
            .add(ArrayExpr::a("X").mul(ArrayExpr::s(2.0))),
    );
    builder.sum_into("OUT", "T", false);
    let forward = builder.build().unwrap();
    println!("{}", forward.describe());

    // Concrete sizes and inputs.
    let mut symbols = HashMap::new();
    symbols.insert("N".to_string(), 8i64);
    let mut inputs = HashMap::new();
    inputs.insert(
        "X".to_string(),
        dace_ad_repro::tensor::random::uniform(&[8], 1),
    );
    inputs.insert(
        "Y".to_string(),
        dace_ad_repro::tensor::random::uniform(&[8], 2),
    );

    // Run just the forward program through the compile-once API: lower it
    // into a CompiledProgram, open a Session, bind inputs, run.
    let program = compile(&forward, &symbols).unwrap();
    let mut session = program.session();
    for (name, tensor) in &inputs {
        session.set_input(name, tensor.clone()).unwrap();
    }
    session.run().unwrap();
    println!(
        "forward-only OUT: {:.6}",
        session.array("OUT").unwrap().data()[0]
    );

    // Build the gradient program (store-all), compile it once, run it.
    let mut engine = GradientEngine::new(
        &forward,
        "OUT",
        &["X", "Y"],
        &symbols,
        &AdOptions::default(),
    )
    .unwrap();
    let result = engine.run(&inputs).unwrap();
    println!("forward output: {:.6}", result.output_value);
    println!("dOUT/dX = {:?}", result.gradients["X"].data());
    println!("dOUT/dY = {:?}", result.gradients["Y"].data());

    // Repeated runs reuse the lowered plan and the tensor slab: the cache
    // miss counter stays at one lowering no matter how often we run.
    let again = engine.run(&inputs).unwrap();
    assert_eq!(again.report.plan_cache_misses, 1);

    // Validate against central finite differences.  The whole sweep runs
    // through the engine's cached forward program — one lowering total.
    let fd = engine.finite_difference("X", &inputs, 1e-6).unwrap();
    assert!(allclose(&result.gradients["X"], &fd, 1e-4, 1e-6));
    println!("gradient matches finite differences ✔ (one forward lowering)");
}
