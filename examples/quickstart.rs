//! Quickstart: write a NumPy-style program, differentiate it with DaCe AD,
//! and validate the gradient against finite differences.
//!
//! Run with `cargo run --release --example quickstart`.

use std::collections::HashMap;

use dace_ad_repro::ad::engine::finite_difference_gradient;
use dace_ad_repro::prelude::*;

fn main() {
    // OUT = sum(sin(X * Y) + 2 * X)   for X, Y of size N
    let mut builder = ProgramBuilder::new("quickstart");
    let n = builder.symbol("N");
    builder.add_input("X", vec![n.clone()]).unwrap();
    builder.add_input("Y", vec![n.clone()]).unwrap();
    builder.add_transient("T", vec![n.clone()]).unwrap();
    builder.add_scalar("OUT").unwrap();
    builder.assign(
        "T",
        ArrayExpr::a("X")
            .mul(ArrayExpr::a("Y"))
            .sin()
            .add(ArrayExpr::a("X").mul(ArrayExpr::s(2.0))),
    );
    builder.sum_into("OUT", "T", false);
    let forward = builder.build().unwrap();
    println!("{}", forward.describe());

    // Concrete sizes and inputs.
    let mut symbols = HashMap::new();
    symbols.insert("N".to_string(), 8i64);
    let mut inputs = HashMap::new();
    inputs.insert(
        "X".to_string(),
        dace_ad_repro::tensor::random::uniform(&[8], 1),
    );
    inputs.insert(
        "Y".to_string(),
        dace_ad_repro::tensor::random::uniform(&[8], 2),
    );

    // Build the gradient program (store-all) and run it.
    let engine = GradientEngine::new(
        &forward,
        "OUT",
        &["X", "Y"],
        &symbols,
        &AdOptions::default(),
    )
    .unwrap();
    let result = engine.run(&inputs).unwrap();
    println!("forward output: {:.6}", result.output_value);
    println!("dOUT/dX = {:?}", result.gradients["X"].data());
    println!("dOUT/dY = {:?}", result.gradients["Y"].data());

    // Validate against central finite differences.
    let fd = finite_difference_gradient(&forward, "OUT", "X", &symbols, &inputs, 1e-6).unwrap();
    assert!(allclose(&result.gradients["X"], &fd, 1e-4, 1e-6));
    println!("gradient matches finite differences ✔");
}
