//! Dynamic-admission serving: requests submitted one by one, coalesced by
//! the admission queue, with deadlines and cancellation.
//!
//! `examples/batched_serving.rs` shows the *static* batch API (the caller
//! assembles N requests up front).  This example shows the serving shape a
//! real deployment has: independent clients submit requests individually,
//! the server forms batches on its own, and every request carries a handle
//! through which its result — or its typed rejection — comes back.
//!
//! Run with: `cargo run --release --example dynamic_serving`

use std::collections::HashMap;
use std::time::Duration;

use dace_ad_repro::prelude::*;
use dace_ad_repro::tensor::Tensor;

fn main() {
    // The same small "model" as the batched example: OUT = sum(sin(W * X)).
    let mut b = ProgramBuilder::new("model");
    let n = b.symbol("N");
    b.add_input("W", vec![n.clone()]).unwrap();
    b.add_input("X", vec![n.clone()]).unwrap();
    b.add_transient("T", vec![n.clone()]).unwrap();
    b.add_scalar("OUT").unwrap();
    b.assign("T", ArrayExpr::a("W").mul(ArrayExpr::a("X")).sin());
    b.sum_into("OUT", "T", false);
    let sdfg = b.build().unwrap();
    let symbols: HashMap<String, i64> = HashMap::from([("N".to_string(), 256)]);

    let request = |i: usize| -> HashMap<String, Tensor> {
        let w: Vec<f64> = (0..256).map(|j| ((j % 17) as f64) * 0.05).collect();
        let x: Vec<f64> = (0..256).map(|j| (i * 7 + j) as f64 * 0.01).collect();
        HashMap::from([
            ("W".to_string(), Tensor::from_vec(w, &[256]).unwrap()),
            ("X".to_string(), Tensor::from_vec(x, &[256]).unwrap()),
        ])
    };

    // One engine, one compiled gradient program, one dynamic server.  The
    // admission queue dispatches as soon as 4 requests wait, or after the
    // oldest request lingered 1ms — whichever comes first.
    let mut engine =
        GradientEngine::new(&sdfg, "OUT", &["W"], &symbols, &AdOptions::default()).unwrap();
    let server = engine.serve_with_options(ServeOptions {
        max_batch: 4,
        max_wait: Duration::from_millis(1),
        workers: 0,
    });

    // --- Clients submit individually; the server coalesces. --------------
    let handles: Vec<_> = (0..10)
        .map(|i| server.submit(&request(i)).expect("inputs are valid"))
        .collect();
    println!("10 requests submitted individually; waiting on their handles");
    for (i, handle) in handles.into_iter().enumerate() {
        let served = handle.wait().unwrap();
        println!(
            "  request {i}: OUT={:+.4}, latency {:?}, coalesced with {} peer(s)",
            served.result.output_value,
            served.latency,
            served.batched_with - 1,
        );
        // Served gradients are bit-identical to the blocking API.
        let blocking = engine.run(&request(i)).unwrap();
        assert_eq!(
            blocking.output_value.to_bits(),
            served.result.output_value.to_bits()
        );
    }

    // --- Deadlines reject before execution; cancellation is explicit. ----
    let server = engine.serve();
    let impatient = server
        .submit_with_deadline(&request(0), Duration::ZERO)
        .unwrap();
    match impatient.wait() {
        Err(EngineError::Serve(ServeError::DeadlineExceeded { missed_by })) => {
            println!("\nzero-budget request rejected before execution (missed by {missed_by:?})");
        }
        other => panic!("expected a deadline rejection, got {other:?}"),
    }

    let stats = server.stats();
    println!(
        "\nserver stats: admitted={}, completed={}, expired={}, batches={} \
         (largest {}), p50={:?}, p95={:?}",
        stats.admitted,
        stats.completed,
        stats.expired,
        stats.batches,
        stats.largest_batch,
        stats.p50_latency,
        stats.p95_latency,
    );
    assert_eq!(stats.completed, 10);
    assert_eq!(stats.expired, 1);
    // The blocking runs, the served requests and the batch dispatches all
    // shared one gradient lowering.
    assert_eq!(engine.gradient_program().cache_stats().misses, 1);
    println!("plan cache: the gradient program was lowered exactly once");
}
