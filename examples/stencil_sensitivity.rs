//! Scientific-computing scenario: sensitivity analysis of a heat-equation
//! style stencil.  The gradient of the final temperature sum with respect to
//! the initial condition is computed by reversing the time-step loop —
//! compactly, without unrolling it (Section III of the paper).
//!
//! Run with `cargo run --release --example stencil_sensitivity`.

use std::collections::HashMap;

use dace_ad_repro::frontend::{elem, lit};
use dace_ad_repro::prelude::*;

fn main() {
    let n: usize = 32;
    let steps: usize = 20;

    // for t in 0..STEPS: for i in 1..N-1: A[i] = 0.25*A[i-1] + 0.5*A[i] + 0.25*A[i+1]
    let mut b = ProgramBuilder::new("heat1d");
    let sym_n = b.symbol("N");
    let sym_t = b.symbol("STEPS");
    b.add_input("A", vec![sym_n.clone()]).unwrap();
    b.add_scalar("OUT").unwrap();
    let i = SymExpr::sym("i");
    b.for_range("t", 0, sym_t.clone(), |b| {
        b.for_range("i", 1, sym_n.sub(&SymExpr::int(1)), |b| {
            b.assign_element(
                "A",
                vec![i.clone()],
                elem("A", vec![i.sub(&SymExpr::int(1))])
                    .mul(lit(0.25))
                    .add(elem("A", vec![i.clone()]).mul(lit(0.5)))
                    .add(elem("A", vec![i.add_int(1)]).mul(lit(0.25))),
            );
        });
    });
    b.sum_into("OUT", "A", false);
    let forward = b.build().unwrap();

    let mut symbols = HashMap::new();
    symbols.insert("N".to_string(), n as i64);
    symbols.insert("STEPS".to_string(), steps as i64);

    // Initial condition: a hot spot in the middle.
    let mut a0 = Tensor::zeros(&[n]);
    *a0.at_mut(&[n / 2]).unwrap() = 100.0;
    let mut inputs = HashMap::new();
    inputs.insert("A".to_string(), a0);

    let mut engine =
        GradientEngine::new(&forward, "OUT", &["A"], &symbols, &AdOptions::default()).unwrap();
    let result = engine.run(&inputs).unwrap();

    println!("total heat after {steps} steps: {:.3}", result.output_value);
    println!("sensitivity of the total heat to each initial cell:");
    let g = &result.gradients["A"];
    for (idx, v) in g.data().iter().enumerate() {
        println!("  dOUT/dA0[{idx:>2}] = {v:.4}");
    }
    // Interior cells conserve heat, boundary cells leak it: the sensitivity
    // is 1.0 in the middle and decays towards the boundary.
    assert!((g.at(&[n / 2]).unwrap() - 1.0).abs() < 0.2);
    println!("\nbackward pass ran the time-step loop in reverse without unrolling ✔");
    println!(
        "gradient program executed {} states in {:?}",
        result.report.state_executions, result.report.elapsed
    );

    // The engine is compile-once/run-many: a second sensitivity run reuses
    // the lowered gradient plan and the session's tensor slab.
    let rerun = engine.run(&inputs).unwrap();
    assert_eq!(rerun.report.plan_cache_misses, 1);
    println!(
        "re-run reused the cached plan ({} lowering) in {:?}",
        rerun.report.plan_cache_misses, rerun.report.elapsed
    );
}
