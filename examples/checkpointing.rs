//! ILP-based checkpointing (Section IV of the paper): the Listing-1 program
//! is differentiated under a user-set memory limit, and the engine decides
//! automatically which forwarded arrays to store and which to recompute.
//!
//! Run with `cargo run --release --example checkpointing`.

use std::collections::HashMap;

use dace_ad_repro::prelude::*;

fn listing1() -> Sdfg {
    let mut b = ProgramBuilder::new("listing1");
    let n = b.symbol("N");
    b.add_input("C", vec![n.clone(), n.clone()]).unwrap();
    b.add_input("D", vec![n.clone(), n.clone()]).unwrap();
    for t in ["A0", "A1", "A2", "sin0", "sin1", "sin2", "D1", "D2", "tmp"] {
        b.add_transient(t, vec![n.clone(), n.clone()]).unwrap();
    }
    b.add_scalar("OUT").unwrap();
    b.assign("A0", ArrayExpr::a("C").mul(ArrayExpr::a("D")));
    b.assign("sin0", ArrayExpr::a("A0").sin());
    b.assign("D1", ArrayExpr::a("D").mul(ArrayExpr::s(6.0)));
    b.assign("A1", ArrayExpr::a("C").mul(ArrayExpr::a("D1")));
    b.assign("sin1", ArrayExpr::a("A1").sin());
    b.assign("D2", ArrayExpr::a("D1").mul(ArrayExpr::s(3.0)));
    b.assign("A2", ArrayExpr::a("C").mul(ArrayExpr::a("D2")));
    b.assign("sin2", ArrayExpr::a("A2").sin());
    b.assign(
        "tmp",
        ArrayExpr::a("sin0")
            .add(ArrayExpr::a("sin1"))
            .add(ArrayExpr::a("sin2")),
    );
    b.sum_into("OUT", "tmp", false);
    b.build().unwrap()
}

fn main() {
    let n: usize = 180;
    let fwd = listing1();
    let mut symbols = HashMap::new();
    symbols.insert("N".to_string(), n as i64);
    let mut inputs = HashMap::new();
    inputs.insert(
        "C".to_string(),
        dace_ad_repro::tensor::random::uniform(&[n, n], 7),
    );
    inputs.insert(
        "D".to_string(),
        dace_ad_repro::tensor::random::uniform(&[n, n], 8),
    );

    // 1) Store-all baseline.
    let mut store_all =
        GradientEngine::new(&fwd, "OUT", &["C", "D"], &symbols, &AdOptions::default()).unwrap();
    let store_res = store_all.run(&inputs).unwrap();
    let store_peak = store_res.report.peak_bytes;
    println!(
        "store-all:       peak = {:7.2} MiB, runtime = {:?}",
        store_peak as f64 / (1024.0 * 1024.0),
        store_res.report.elapsed
    );

    // 2) ILP under a limit below the store-all peak.
    let limit = store_peak - (n * n * 8);
    let mut ilp = GradientEngine::new(
        &fwd,
        "OUT",
        &["C", "D"],
        &symbols,
        &AdOptions::with_memory_limit(limit),
    )
    .unwrap();
    let report = ilp.plan().ilp_report.clone().unwrap();
    println!(
        "memory limit:    {:7.2} MiB",
        limit as f64 / (1024.0 * 1024.0)
    );
    println!("ILP decision:    store {:?}", report.stored);
    println!("                 recompute {:?}", report.recomputed);
    println!(
        "                 solved in {:?} ({} branch-and-bound nodes)",
        report.solve_time, report.solver_nodes
    );
    let ilp_res = ilp.run(&inputs).unwrap();
    println!(
        "ILP config:      peak = {:7.2} MiB, runtime = {:?}",
        ilp_res.report.peak_bytes as f64 / (1024.0 * 1024.0),
        ilp_res.report.elapsed
    );

    // Gradients are identical regardless of the checkpointing strategy.
    for k in ["C", "D"] {
        assert!(allclose(
            &store_res.gradients[k],
            &ilp_res.gradients[k],
            1e-9,
            1e-11
        ));
    }
    assert!(ilp_res.report.peak_bytes <= store_peak);
    println!("\ngradients identical under both configurations ✔");
}
